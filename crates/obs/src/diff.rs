//! Structural comparison of two JSON artifacts under a tolerance policy.
//!
//! `sinrcolor diff` (and the CI bench gate) compares a *current* document
//! against a committed *baseline* — both arbitrary nested JSON parsed with
//! [`parse_value`](crate::json::parse_value) — and reports every
//! difference the policy does not excuse. A policy is itself a small JSON
//! document (kind `diff_policy`, see `docs/OBS_SCHEMA.md`): an ordered
//! rule list mapping path patterns to tolerances.
//!
//! Paths are `/`-separated so dotted metric keys stay single segments
//! (`metrics/sim.slots/value`); array elements use their index as a
//! segment. In a pattern, `*` matches exactly one segment and a trailing
//! `**` matches any remainder. The first matching rule wins; paths no rule
//! matches are compared exactly.

use crate::json::{parse_value, Json, JsonValue};
use std::fmt::Write as _;

/// How a matched path is compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Skip the path (and everything under it) entirely.
    Ignore,
    /// Values must be equal (the default for unmatched paths).
    Exact,
    /// Numbers may differ by at most this absolute amount.
    Abs(f64),
    /// Numbers may differ by at most this fraction of the baseline value.
    Rel(f64),
}

/// One policy rule: a path pattern and the tolerance it grants.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRule {
    /// `/`-separated pattern; `*` matches one segment, trailing `**` the rest.
    pub path: String,
    /// Tolerance applied where the pattern matches.
    pub tolerance: Tolerance,
}

/// An ordered rule list; the first rule whose pattern matches a path wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffPolicy {
    /// The rules, in priority order.
    pub rules: Vec<DiffRule>,
}

impl DiffPolicy {
    /// A policy with no rules: everything compares exactly.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses a `diff_policy` JSON document. Errors are human-readable
    /// one-liners naming the offending rule.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse_value(text).ok_or("policy is not valid JSON")?;
        if let Some(kind) = doc.get("kind").and_then(Json::as_str) {
            if kind != "diff_policy" {
                return Err(format!(
                    "policy kind is \"{kind}\", expected \"diff_policy\""
                ));
            }
        }
        let rules_json = doc
            .get("rules")
            .ok_or("policy has no \"rules\" array")?
            .as_array()
            .ok_or("policy \"rules\" is not an array")?;
        let mut rules = Vec::with_capacity(rules_json.len());
        for (i, rule) in rules_json.iter().enumerate() {
            let path = rule
                .get("path")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("rule {i}: missing string field \"path\""))?;
            let mode = rule
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("rule {i} ({path}): missing string field \"mode\""))?;
            let value = rule.get("value").and_then(Json::as_f64);
            let tolerance = match (mode, value) {
                ("ignore", _) => Tolerance::Ignore,
                ("exact", _) => Tolerance::Exact,
                ("abs", Some(v)) if v >= 0.0 => Tolerance::Abs(v),
                ("rel", Some(v)) if v >= 0.0 => Tolerance::Rel(v),
                ("abs" | "rel", _) => {
                    return Err(format!(
                        "rule {i} ({path}): mode \"{mode}\" needs a non-negative \
                         numeric \"value\""
                    ));
                }
                _ => {
                    return Err(format!(
                        "rule {i} ({path}): unknown mode \"{mode}\" \
                         (expected ignore|exact|abs|rel)"
                    ));
                }
            };
            rules.push(DiffRule {
                path: path.to_string(),
                tolerance,
            });
        }
        Ok(DiffPolicy { rules })
    }

    /// The tolerance for `path`: first matching rule, else [`Tolerance::Exact`].
    pub fn lookup(&self, path: &str) -> Tolerance {
        self.rules
            .iter()
            .find(|r| pattern_matches(&r.path, path))
            .map_or(Tolerance::Exact, |r| r.tolerance)
    }
}

fn pattern_matches(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    let mut i = 0;
    for (idx, p) in pat.iter().enumerate() {
        if *p == "**" && idx == pat.len() - 1 {
            return true;
        }
        match segs.get(i) {
            Some(s) if *p == "*" || p == s => i += 1,
            _ => return false,
        }
    }
    i == segs.len()
}

/// One observed difference.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// `/`-separated path of the differing node.
    pub path: String,
    /// Finding class: `value`, `type`, `added`, `removed`, or `length`.
    pub kind: &'static str,
    /// Human-readable description of the difference.
    pub detail: String,
}

/// Compares `current` against `baseline` under `policy`, returning every
/// unexcused difference (empty = the documents agree within tolerance).
pub fn diff_documents(baseline: &Json, current: &Json, policy: &DiffPolicy) -> Vec<DiffFinding> {
    let mut findings = Vec::new();
    walk(&mut String::new(), baseline, current, policy, &mut findings);
    findings
}

fn walk(
    path: &mut String,
    baseline: &Json,
    current: &Json,
    policy: &DiffPolicy,
    findings: &mut Vec<DiffFinding>,
) {
    let tol = policy.lookup(path);
    if tol == Tolerance::Ignore {
        return;
    }
    match (baseline, current) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, bv) in b {
                let len = path.len();
                push_segment(path, key);
                match c.iter().find(|(k, _)| k == key) {
                    Some((_, cv)) => walk(path, bv, cv, policy, findings),
                    None => {
                        if policy.lookup(path) != Tolerance::Ignore {
                            findings.push(DiffFinding {
                                path: path.clone(),
                                kind: "removed",
                                detail: "present in baseline, missing in current".into(),
                            });
                        }
                    }
                }
                path.truncate(len);
            }
            for (key, _) in c {
                if b.iter().any(|(k, _)| k == key) {
                    continue;
                }
                let len = path.len();
                push_segment(path, key);
                if policy.lookup(path) != Tolerance::Ignore {
                    findings.push(DiffFinding {
                        path: path.clone(),
                        kind: "added",
                        detail: "missing in baseline, present in current".into(),
                    });
                }
                path.truncate(len);
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                findings.push(DiffFinding {
                    path: path.clone(),
                    kind: "length",
                    detail: format!("baseline has {} elements, current has {}", b.len(), c.len()),
                });
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                let len = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                let _ = write!(path, "{i}");
                walk(path, bv, cv, policy, findings);
                path.truncate(len);
            }
        }
        _ => compare_leaf(path, baseline, current, tol, findings),
    }
}

fn push_segment(path: &mut String, key: &str) {
    if !path.is_empty() {
        path.push('/');
    }
    path.push_str(key);
}

fn compare_leaf(
    path: &str,
    baseline: &Json,
    current: &Json,
    tol: Tolerance,
    findings: &mut Vec<DiffFinding>,
) {
    if let (Some(b), Some(c)) = (baseline.as_f64(), current.as_f64()) {
        let within = match tol {
            Tolerance::Ignore => true,
            Tolerance::Exact => b == c,
            Tolerance::Abs(t) => (b - c).abs() <= t,
            Tolerance::Rel(t) => (b - c).abs() <= t * b.abs().max(f64::MIN_POSITIVE),
        };
        if !within {
            findings.push(DiffFinding {
                path: path.to_string(),
                kind: "value",
                detail: format!("baseline {b} vs current {c}"),
            });
        }
        return;
    }
    match (baseline, current) {
        (Json::Scalar(b), Json::Scalar(c)) if b == c => {}
        (Json::Scalar(JsonValue::Str(b)), Json::Scalar(JsonValue::Str(c))) => {
            findings.push(DiffFinding {
                path: path.to_string(),
                kind: "value",
                detail: format!("baseline \"{b}\" vs current \"{c}\""),
            });
        }
        (Json::Scalar(JsonValue::Bool(b)), Json::Scalar(JsonValue::Bool(c))) => {
            findings.push(DiffFinding {
                path: path.to_string(),
                kind: "value",
                detail: format!("baseline {b} vs current {c}"),
            });
        }
        _ => {
            findings.push(DiffFinding {
                path: path.to_string(),
                kind: "type",
                detail: format!(
                    "baseline is {}, current is {}",
                    json_kind(baseline),
                    json_kind(current)
                ),
            });
        }
    }
}

fn json_kind(j: &Json) -> &'static str {
    match j {
        Json::Obj(_) => "an object",
        Json::Arr(_) => "an array",
        Json::Scalar(JsonValue::Str(_)) => "a string",
        Json::Scalar(JsonValue::Bool(_)) => "a bool",
        Json::Scalar(JsonValue::Null) => "null",
        Json::Scalar(_) => "a number",
    }
}

/// Renders findings as one `diff_report` JSON document
/// (see `docs/OBS_SCHEMA.md`). `count == 0` means the gate passes.
pub fn render_diff_report(
    baseline_name: &str,
    current_name: &str,
    rules: usize,
    findings: &[DiffFinding],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema_version\":{},\"kind\":\"diff_report\",\"baseline\":",
        crate::OBS_SCHEMA_VERSION
    );
    crate::json::push_str_escaped(&mut out, baseline_name);
    out.push_str(",\"current\":");
    crate::json::push_str_escaped(&mut out, current_name);
    let _ = write!(
        out,
        ",\"rules\":{rules},\"count\":{},\"findings\":[",
        findings.len()
    );
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        crate::json::push_str_escaped(&mut out, &f.path);
        let _ = write!(out, ",\"kind\":\"{}\",\"detail\":", f.kind);
        crate::json::push_str_escaped(&mut out, &f.detail);
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        parse_value(s).expect("test document parses")
    }

    #[test]
    fn identical_documents_have_zero_findings() {
        let doc = parse(r#"{"a":1,"b":[1,2,{"c":0.5}],"d":"x"}"#);
        assert!(diff_documents(&doc, &doc, &DiffPolicy::empty()).is_empty());
    }

    #[test]
    fn exact_default_flags_value_type_and_shape_changes() {
        let base = parse(r#"{"a":1,"b":[1,2],"c":"x","gone":0}"#);
        let cur = parse(r#"{"a":2,"b":[1,2,3],"c":5,"new":1}"#);
        let findings = diff_documents(&base, &cur, &DiffPolicy::empty());
        let kinds: Vec<(&str, &str)> = findings.iter().map(|f| (f.path.as_str(), f.kind)).collect();
        assert!(kinds.contains(&("a", "value")));
        assert!(kinds.contains(&("b", "length")));
        assert!(kinds.contains(&("c", "type")));
        assert!(kinds.contains(&("gone", "removed")));
        assert!(kinds.contains(&("new", "added")));
    }

    #[test]
    fn tolerances_excuse_bounded_drift() {
        let base = parse(r#"{"rate":100.0,"jitter":5,"noise":1}"#);
        let cur = parse(r#"{"rate":104.0,"jitter":5.4,"noise":999}"#);
        let policy = DiffPolicy {
            rules: vec![
                DiffRule {
                    path: "rate".into(),
                    tolerance: Tolerance::Rel(0.05),
                },
                DiffRule {
                    path: "jitter".into(),
                    tolerance: Tolerance::Abs(0.5),
                },
                DiffRule {
                    path: "noise".into(),
                    tolerance: Tolerance::Ignore,
                },
            ],
        };
        assert!(diff_documents(&base, &cur, &policy).is_empty());
        let strict = DiffPolicy::empty();
        assert_eq!(diff_documents(&base, &cur, &strict).len(), 3);
    }

    #[test]
    fn int_and_float_encodings_of_one_value_compare_numerically() {
        let base = parse(r#"{"x":2}"#);
        let cur = parse(r#"{"x":2.0}"#);
        assert!(diff_documents(&base, &cur, &DiffPolicy::empty()).is_empty());
    }

    #[test]
    fn wildcards_match_one_segment_and_trailing_rest() {
        assert!(pattern_matches(
            "metrics/*/value",
            "metrics/sim.slots/value"
        ));
        assert!(!pattern_matches(
            "metrics/*/value",
            "metrics/sim.slots/deep/value"
        ));
        assert!(pattern_matches(
            "metrics/**",
            "metrics/sim.slots/deep/value"
        ));
        assert!(pattern_matches("**", "anything/at/all"));
        assert!(!pattern_matches("metrics/*", "metrics"));
    }

    #[test]
    fn ignore_rules_prune_whole_subtrees_and_missing_keys() {
        let base = parse(r#"{"env":{"host":"a","cores":1},"x":1}"#);
        let cur = parse(r#"{"env":{"host":"b"},"x":1,"extra":{"y":2}}"#);
        let policy = DiffPolicy {
            rules: vec![
                DiffRule {
                    path: "env/**".into(),
                    tolerance: Tolerance::Ignore,
                },
                DiffRule {
                    path: "extra".into(),
                    tolerance: Tolerance::Ignore,
                },
            ],
        };
        assert!(diff_documents(&base, &cur, &policy).is_empty());
    }

    #[test]
    fn policy_parse_accepts_the_documented_format() {
        let policy = DiffPolicy::parse(
            r#"{"kind":"diff_policy","rules":[
                {"path":"metrics/resolver.hit_rate/value","mode":"rel","value":0.05},
                {"path":"env/**","mode":"ignore"},
                {"path":"slots","mode":"abs","value":2},
                {"path":"colors","mode":"exact"}
            ]}"#,
        )
        .expect("policy parses");
        assert_eq!(policy.rules.len(), 4);
        assert_eq!(policy.rules[0].tolerance, Tolerance::Rel(0.05));
        assert_eq!(policy.rules[1].tolerance, Tolerance::Ignore);
        assert_eq!(policy.rules[2].tolerance, Tolerance::Abs(2.0));
        assert_eq!(policy.rules[3].tolerance, Tolerance::Exact);
    }

    #[test]
    fn policy_parse_errors_are_friendly() {
        assert!(DiffPolicy::parse("not json")
            .unwrap_err()
            .contains("not valid JSON"));
        assert!(DiffPolicy::parse(r#"{"kind":"metrics","rules":[]}"#)
            .unwrap_err()
            .contains("expected \"diff_policy\""));
        assert!(DiffPolicy::parse(r#"{"rules":1}"#)
            .unwrap_err()
            .contains("not an array"));
        let err = DiffPolicy::parse(r#"{"rules":[{"path":"a","mode":"rel"}]}"#).unwrap_err();
        assert!(
            err.contains("rule 0") && err.contains("non-negative"),
            "{err}"
        );
        let err = DiffPolicy::parse(r#"{"rules":[{"path":"a","mode":"fuzzy"}]}"#).unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
        let err = DiffPolicy::parse(r#"{"rules":[{"mode":"exact"}]}"#).unwrap_err();
        assert!(err.contains("missing string field \"path\""), "{err}");
    }

    #[test]
    fn diff_report_renders_and_round_trips() {
        let findings = vec![DiffFinding {
            path: "metrics/sim.slots/value".into(),
            kind: "value",
            detail: "baseline 100 vs current 120".into(),
        }];
        let doc = render_diff_report("base.json", "cur.json", 3, &findings);
        let v = parse_value(&doc).expect("report parses");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("diff_report"));
        assert_eq!(v.get("count").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("rules").and_then(Json::as_i64), Some(3));
        let f = &v.get("findings").and_then(Json::as_array).expect("arr")[0];
        assert_eq!(f.get("kind").and_then(Json::as_str), Some("value"));
    }
}
