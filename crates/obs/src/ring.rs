//! A bounded ring buffer that keeps the newest items.

/// A fixed-capacity ring: pushes beyond the capacity overwrite the oldest
/// item and are tallied in [`Ring::dropped`], so tracing an arbitrarily
/// long run uses bounded memory while always retaining the most recent
/// window (the part that explains how a run ended).
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest item once the ring is full (next overwrite spot).
    head: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap: capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an item, evicting the oldest if the ring is full.
    pub fn push(&mut self, item: T) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Iterates items oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The maximum number of items the ring retains.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of items that have been evicted (or, for a zero-capacity
    /// ring, never stored).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total number of items ever pushed.
    pub fn pushed(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Removes all items (eviction accounting is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = Ring::with_capacity(3);
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        r.push(3);
        r.push(4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2, "two oldest items evicted");
        assert_eq!(r.pushed(), 5);
    }

    #[test]
    fn wraparound_preserves_order_across_many_generations() {
        let mut r = Ring::with_capacity(4);
        for i in 0..103 {
            r.push(i);
        }
        assert_eq!(
            r.iter().copied().collect::<Vec<_>>(),
            vec![99, 100, 101, 102]
        );
        assert_eq!(r.dropped(), 99);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut r = Ring::with_capacity(0);
        r.push(1);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.pushed(), 2);
    }

    #[test]
    fn clear_keeps_drop_accounting() {
        let mut r = Ring::with_capacity(2);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3);
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![9]);
    }
}
