//! Structured observability events.
//!
//! [`ObsEvent`] extends the engine's debug trace vocabulary
//! (wake/transmit/receive/done) with the phase-aware records the paper's
//! analysis talks about: MW state transitions `A_i → R → C_j` with the
//! level they happen at, probe violations (Theorems 1 & 3, Lemmas 4–7),
//! and free-form per-node annotations such as competition-counter resets.
//! Each event serializes to one flat JSONL object (`docs/OBS_SCHEMA.md`).

use crate::json::push_str_escaped;
use std::fmt::Write as _;

/// One structured event, recorded at a slot.
///
/// Name fields (`from`/`to`/`probe`/`name`) are `&'static str` drawn from
/// small fixed vocabularies defined by the emitting crate (e.g. the MW
/// phase kind names), which keeps events `Copy` and emission
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// Node woke up.
    Wake {
        /// The node that woke.
        node: usize,
    },
    /// Node transmitted.
    Transmit {
        /// The transmitting node.
        node: usize,
    },
    /// `receiver` decoded a message from `sender`.
    Receive {
        /// The node that heard the message.
        receiver: usize,
        /// The node whose message was decoded.
        sender: usize,
    },
    /// Node reported `is_done()` for the first time.
    Done {
        /// The node that decided.
        node: usize,
    },
    /// A protocol-state transition (for MW: `listen`, `compete`,
    /// `request`, `leader`, `colored`).
    Phase {
        /// The node that changed state.
        node: usize,
        /// State being left.
        from: &'static str,
        /// State being entered.
        to: &'static str,
        /// Protocol level of the new state (MW color-layer index `i` of
        /// `A_i`/`C_i`), or −1 where levels do not apply.
        level: i64,
    },
    /// An invariant probe observed a violation of a paper claim.
    Violation {
        /// Probe identifier (e.g. `thm1_independence`, `lemma4_levels`).
        probe: &'static str,
        /// The offending node.
        node: usize,
        /// Probe-specific detail (e.g. the clashing color).
        detail: i64,
    },
    /// A named per-node annotation (e.g. `counter_reset` with the value
    /// the competition counter restarted from).
    Note {
        /// Annotation name.
        name: &'static str,
        /// The node annotated.
        node: usize,
        /// Annotation value.
        value: i64,
    },
}

impl ObsEvent {
    /// The event's `type` tag as it appears in JSONL.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Wake { .. } => "wake",
            ObsEvent::Transmit { .. } => "transmit",
            ObsEvent::Receive { .. } => "receive",
            ObsEvent::Done { .. } => "done",
            ObsEvent::Phase { .. } => "phase",
            ObsEvent::Violation { .. } => "violation",
            ObsEvent::Note { .. } => "note",
        }
    }

    /// Appends the event as one JSONL line (no trailing newline) to `out`.
    pub fn jsonl_into(&self, slot: u64, out: &mut String) {
        let _ = write!(out, "{{\"slot\":{slot},\"type\":\"{}\"", self.kind());
        match self {
            ObsEvent::Wake { node } | ObsEvent::Transmit { node } | ObsEvent::Done { node } => {
                let _ = write!(out, ",\"node\":{node}");
            }
            ObsEvent::Receive { receiver, sender } => {
                let _ = write!(out, ",\"receiver\":{receiver},\"sender\":{sender}");
            }
            ObsEvent::Phase {
                node,
                from,
                to,
                level,
            } => {
                let _ = write!(out, ",\"node\":{node},\"from\":");
                push_str_escaped(out, from);
                out.push_str(",\"to\":");
                push_str_escaped(out, to);
                let _ = write!(out, ",\"level\":{level}");
            }
            ObsEvent::Violation {
                probe,
                node,
                detail,
            } => {
                out.push_str(",\"probe\":");
                push_str_escaped(out, probe);
                let _ = write!(out, ",\"node\":{node},\"detail\":{detail}");
            }
            ObsEvent::Note { name, node, value } => {
                out.push_str(",\"name\":");
                push_str_escaped(out, name);
                let _ = write!(out, ",\"node\":{node},\"value\":{value}");
            }
        }
        out.push('}');
    }

    /// The event as one JSONL line (no trailing newline).
    pub fn jsonl(&self, slot: u64) -> String {
        let mut out = String::new();
        self.jsonl_into(slot, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_flat_object, render_flat_object, JsonValue};

    fn samples() -> Vec<(u64, ObsEvent)> {
        vec![
            (0, ObsEvent::Wake { node: 1 }),
            (3, ObsEvent::Transmit { node: 2 }),
            (
                3,
                ObsEvent::Receive {
                    receiver: 0,
                    sender: 2,
                },
            ),
            (9, ObsEvent::Done { node: 2 }),
            (
                5,
                ObsEvent::Phase {
                    node: 4,
                    from: "listen",
                    to: "compete",
                    level: 2,
                },
            ),
            (
                6,
                ObsEvent::Violation {
                    probe: "thm1_independence",
                    node: 7,
                    detail: 3,
                },
            ),
            (
                7,
                ObsEvent::Note {
                    name: "counter_reset",
                    node: 7,
                    value: -4,
                },
            ),
        ]
    }

    #[test]
    fn jsonl_lines_match_schema() {
        let lines: Vec<String> = samples().iter().map(|(s, e)| e.jsonl(*s)).collect();
        assert_eq!(lines[0], r#"{"slot":0,"type":"wake","node":1}"#);
        assert_eq!(
            lines[2],
            r#"{"slot":3,"type":"receive","receiver":0,"sender":2}"#
        );
        assert_eq!(
            lines[4],
            r#"{"slot":5,"type":"phase","node":4,"from":"listen","to":"compete","level":2}"#
        );
        assert_eq!(
            lines[5],
            r#"{"slot":6,"type":"violation","probe":"thm1_independence","node":7,"detail":3}"#
        );
        assert_eq!(
            lines[6],
            r#"{"slot":7,"type":"note","name":"counter_reset","node":7,"value":-4}"#
        );
    }

    #[test]
    fn every_event_kind_round_trips_through_the_parser() {
        for (slot, event) in samples() {
            let line = event.jsonl(slot);
            let fields =
                parse_flat_object(&line).unwrap_or_else(|| panic!("line must parse: {line}"));
            assert_eq!(
                fields[0],
                ("slot".to_string(), JsonValue::Int(slot as i64)),
                "slot field leads every line"
            );
            assert_eq!(
                fields[1],
                ("type".to_string(), JsonValue::Str(event.kind().to_string()))
            );
            assert_eq!(render_flat_object(&fields), line, "byte-exact round-trip");
        }
    }
}
