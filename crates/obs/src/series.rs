//! Per-slot time-series sampling of selected counters and gauges.
//!
//! The metrics [`Registry`](crate::Registry) answers "how much, in total";
//! the event ring answers "what happened, lately". This module answers
//! *when the run's behavior changed shape*: a [`TimeSeries`] takes a
//! bounded number of periodic snapshots of a fixed key set while the run
//! executes, and exports them as the columnar `timeseries` document
//! (schema in `docs/OBS_SCHEMA.md`).
//!
//! Sampling is slot-time only — the engine drives it through
//! [`Recorder::series_tick`](crate::Recorder::series_tick) once per slot —
//! so a series from a recorded run is deterministic and byte-identical
//! across thread counts, like every other artifact in this crate.

use crate::json::push_f64;
use crate::keys;
use crate::metrics::{MetricValue, Registry};
use std::fmt::Write as _;

/// Default cap on retained samples; at stride 1 this covers the longest
/// runs the default slot caps produce without unbounded growth.
pub const DEFAULT_MAX_SAMPLES: usize = 16_384;

/// The default key set: per-slot channel occupancy plus the MW churn and
/// probe counters whose *trajectory* (not just total) is diagnostic.
pub fn default_keys() -> Vec<&'static str> {
    vec![
        keys::SIM_SLOT_TRANSMITTERS,
        keys::MW_PHASE_TRANSITIONS,
        keys::MW_COUNTER_RESETS,
        keys::PROBE_THM1_VIOLATIONS,
        keys::OBS_EVENTS_DROPPED,
    ]
}

/// Configuration for a [`TimeSeries`]: sampling stride (in slots), sample
/// cap, and the sampled key set.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesConfig {
    /// Sample every `stride`-th slot (clamped to ≥ 1).
    pub stride: u64,
    /// Retain at most this many samples; later ticks are dropped (and
    /// counted) rather than evicting history, so the series keeps the
    /// *start* of the run where phase structure lives.
    pub max_samples: usize,
    /// Keys to sample; sorted and deduplicated at construction.
    pub keys: Vec<&'static str>,
}

impl SeriesConfig {
    /// The default configuration at the given stride.
    pub fn new(stride: u64) -> Self {
        SeriesConfig {
            stride: stride.max(1),
            max_samples: DEFAULT_MAX_SAMPLES,
            keys: default_keys(),
        }
    }

    /// Replaces the sampled key set.
    pub fn with_keys(mut self, keys: Vec<&'static str>) -> Self {
        self.keys = keys;
        self
    }

    /// Replaces the sample cap.
    pub fn with_max_samples(mut self, max_samples: usize) -> Self {
        self.max_samples = max_samples;
        self
    }
}

impl Default for SeriesConfig {
    fn default() -> Self {
        Self::new(1)
    }
}

/// A bounded columnar time-series: one row per sampled slot, one column
/// per configured key.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    stride: u64,
    max_samples: usize,
    keys: Vec<&'static str>,
    slots: Vec<u64>,
    columns: Vec<Vec<f64>>,
    dropped_ticks: u64,
}

impl TimeSeries {
    /// An empty series with the given configuration.
    pub fn new(cfg: SeriesConfig) -> Self {
        let mut keys = cfg.keys;
        keys.sort_unstable();
        keys.dedup();
        let columns = keys.iter().map(|_| Vec::new()).collect();
        TimeSeries {
            stride: cfg.stride.max(1),
            max_samples: cfg.max_samples,
            keys,
            slots: Vec::new(),
            columns,
            dropped_ticks: 0,
        }
    }

    /// Offers slot `slot` for sampling. Off-stride slots are ignored;
    /// on-stride slots beyond the cap are dropped and counted.
    /// `events_dropped` feeds the virtual `obs.events.dropped` column
    /// (ring bookkeeping lives outside the registry during the run).
    pub fn tick(&mut self, slot: u64, registry: &Registry, events_dropped: u64) {
        if !slot.is_multiple_of(self.stride) {
            return;
        }
        if self.slots.len() >= self.max_samples {
            self.dropped_ticks += 1;
            return;
        }
        self.slots.push(slot);
        for (key, column) in self.keys.iter().zip(&mut self.columns) {
            let value = if *key == keys::OBS_EVENTS_DROPPED {
                events_dropped as f64
            } else {
                match registry.get(key) {
                    Some(MetricValue::Counter(c)) => *c as f64,
                    Some(MetricValue::Gauge(g)) => *g,
                    Some(MetricValue::Histogram(h)) => h.count() as f64,
                    None => 0.0,
                }
            };
            column.push(value);
        }
    }

    /// The sampled keys (column order).
    pub fn keys(&self) -> &[&'static str] {
        &self.keys
    }

    /// The sampled slots (row labels).
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// The column for `key`, if it is sampled.
    pub fn column(&self, key: &str) -> Option<&[f64]> {
        let idx = self.keys.iter().position(|k| *k == key)?;
        self.columns.get(idx).map(Vec::as_slice)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// On-stride ticks dropped because the cap was reached.
    pub fn dropped_ticks(&self) -> u64 {
        self.dropped_ticks
    }

    /// The sampling stride.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The series as one standalone JSON document (schema kind
    /// `timeseries`, see `docs/OBS_SCHEMA.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"kind\":\"timeseries\",\"stride\":{},\
             \"samples\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}},\"slots\":[",
            crate::OBS_SCHEMA_VERSION,
            self.stride,
            self.slots.len(),
            self.dropped_ticks,
            self.max_samples
        );
        for (i, slot) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{slot}");
        }
        out.push_str("],\"series\":{");
        for (i, (key, column)) in self.keys.iter().zip(&self.columns).enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_str_escaped(&mut out, key);
            out.push_str(":[");
            for (j, v) in column.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_f64(&mut out, *v);
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_value, Json};

    #[test]
    fn stride_and_cap_are_honoured() {
        let cfg = SeriesConfig::new(2)
            .with_keys(vec!["a"])
            .with_max_samples(3);
        let mut ts = TimeSeries::new(cfg);
        let mut reg = Registry::new();
        for slot in 0..12 {
            reg.counter_add("a", 1);
            ts.tick(slot, &reg, 0);
        }
        // On-stride slots: 0,2,4,6,8,10 → first 3 kept, 3 dropped.
        assert_eq!(ts.slots(), &[0, 2, 4]);
        assert_eq!(ts.column("a"), Some(&[1.0, 3.0, 5.0][..]));
        assert_eq!(ts.dropped_ticks(), 3);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn keys_are_sorted_deduped_and_missing_keys_read_zero() {
        let cfg = SeriesConfig::new(1).with_keys(vec!["z.key", "a.key", "z.key"]);
        let mut ts = TimeSeries::new(cfg);
        assert_eq!(ts.keys(), &["a.key", "z.key"]);
        let reg = Registry::new();
        ts.tick(0, &reg, 0);
        assert_eq!(ts.column("a.key"), Some(&[0.0][..]));
        assert!(ts.column("missing").is_none());
    }

    #[test]
    fn events_dropped_column_reads_the_ring_bookkeeping() {
        let cfg = SeriesConfig::new(1).with_keys(vec![keys::OBS_EVENTS_DROPPED]);
        let mut ts = TimeSeries::new(cfg);
        let reg = Registry::new();
        ts.tick(0, &reg, 0);
        ts.tick(1, &reg, 42);
        assert_eq!(ts.column(keys::OBS_EVENTS_DROPPED), Some(&[0.0, 42.0][..]));
    }

    #[test]
    fn json_document_is_columnar_and_parseable() {
        let cfg = SeriesConfig::new(1)
            .with_keys(vec!["b", "a"])
            .with_max_samples(2);
        let mut ts = TimeSeries::new(cfg);
        let mut reg = Registry::new();
        reg.gauge_set("a", 0.5);
        reg.counter_add("b", 2);
        ts.tick(0, &reg, 0);
        reg.gauge_set("a", 1.5);
        ts.tick(1, &reg, 0);
        ts.tick(2, &reg, 0); // dropped (cap 2)
        let doc = ts.to_json();
        let v = parse_value(&doc).expect("series document parses");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("timeseries"));
        assert_eq!(v.get("stride").and_then(Json::as_i64), Some(1));
        let samples = v.get("samples").expect("samples");
        assert_eq!(samples.get("recorded").and_then(Json::as_i64), Some(2));
        assert_eq!(samples.get("dropped").and_then(Json::as_i64), Some(1));
        assert_eq!(
            v.get("slots").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        let series = v.get("series").expect("series");
        assert!(series.get("a").is_some());
        assert!(series.get("b").is_some());
    }

    #[test]
    fn zero_stride_is_clamped_not_a_panic() {
        let mut ts = TimeSeries::new(SeriesConfig::new(0).with_keys(vec!["a"]));
        assert_eq!(ts.stride(), 1);
        ts.tick(0, &Registry::new(), 0);
        assert_eq!(ts.len(), 1);
    }
}
