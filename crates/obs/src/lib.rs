#![warn(missing_docs)]

//! Unified observability layer for the SINR coloring workspace.
//!
//! The paper's guarantees are per-slot, per-state claims — time spent in
//! states `A_i` and `R` (Lemmas 4–7), independence of every color class
//! throughout the run (Theorem 1), interference-freedom of the final TDMA
//! schedule (Theorem 3). This crate gives the rest of the workspace one
//! vocabulary for measuring them:
//!
//! * [`Recorder`] — the single sink trait everything records through. The
//!   engine, the MW driver, and the probes take `&mut dyn Recorder`; with
//!   [`NoopRecorder`] (the default) every hook is a no-op behind one
//!   `enabled()` check per slot, so disabled observability costs nothing
//!   measurable in the hot loop.
//! * [`Registry`] / [`Histogram`] — a typed metrics store (counters,
//!   gauges, fixed-bucket integer histograms) with deterministic iteration
//!   order and a stable JSON dump. **No wall-clock anywhere**: metrics are
//!   slot-time only, so recorded runs stay a pure function of the seed.
//! * [`ObsEvent`] / [`Ring`] — a structured, phase-aware event stream
//!   (wake/transmit/receive/done, MW state transitions `A_i → R → C_j`,
//!   probe violations) held in a bounded ring buffer and exported as JSONL.
//! * [`Stopwatch`] — the one sanctioned wall-clock type, for *bench
//!   binaries only*; it never feeds the deterministic path.
//! * [`CountingAlloc`] / [`AllocScope`] — heap-traffic accounting: a
//!   counting `#[global_allocator]` wrapper (installed only in bin/test/
//!   bench crates, lint L10) plus snapshot/scope primitives that
//!   attribute allocation deltas to phases. Profile-only, like the
//!   stopwatch: `prof.alloc.*` numbers never enter deterministic
//!   artifacts.
//!
//! Schemas for the JSONL stream, the metrics dump, and the run report are
//! frozen in `docs/OBS_SCHEMA.md`; the probe→lemma mapping and the naming
//! scheme live in `docs/OBSERVABILITY.md`.

pub mod alloc;
pub mod diff;
pub mod event;
pub mod json;
pub mod keys;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod ring;
pub mod series;
pub mod sink;
pub mod span;

pub use alloc::{AllocKeySet, AllocScope, AllocSnapshot, AllocStats, CountingAlloc};
pub use diff::{diff_documents, render_diff_report, DiffFinding, DiffPolicy, DiffRule, Tolerance};
pub use event::ObsEvent;
pub use metrics::{Histogram, MetricValue, Registry};
pub use profile::Stopwatch;
pub use recorder::{FullRecorder, NoopRecorder, Recorder};
pub use ring::Ring;
pub use series::{SeriesConfig, TimeSeries};
pub use sink::StderrSink;
pub use span::{SpanRecord, SpanTrack, WallSpan, QUARTERS_PER_SLOT};

/// Schema version stamped into every machine-readable artifact this crate
/// emits (metrics dumps, run reports, JSONL headers, traces, time series
/// and diff reports are all additive under the same number; see
/// `docs/OBS_SCHEMA.md`). Version 2 added the `trace_events`,
/// `timeseries` and `diff_report` kinds, histogram `p50`/`p95`/`p99`
/// summary fields, and the `obs.*` retention counters in exported
/// registries.
pub const OBS_SCHEMA_VERSION: u32 = 2;
