//! Canonical metric key names.
//!
//! Keys are dotted, lowercase, and stable — they are part of the report
//! schema in `docs/OBS_SCHEMA.md`. Every crate that records through a
//! [`Recorder`](crate::Recorder) uses these constants rather than string
//! literals so the full vocabulary is auditable in one place:
//!
//! * `sim.*` — engine-level totals (slots, transmissions, channel load).
//! * `resolver.*` — fast-path counters of the grid-tiled SINR resolver.
//! * `mw.*` — MW coloring automaton aggregates (phase residency,
//!   transitions, levels).
//! * `probe.<claim>.*` — invariant probes; `checks` counts sweeps,
//!   `violations` counts observed breaches of the paper claim.
//! * `obs.*` — the recorder's own bookkeeping (ring/span retention), so
//!   truncation is visible inside the exported artifacts themselves.

/// Total slots executed.
pub const SIM_SLOTS: &str = "sim.slots";
/// Transmitters in the most recent slot (live per-slot gauge, the
/// canonical time-series channel-occupancy signal).
pub const SIM_SLOT_TRANSMITTERS: &str = "sim.slot.transmitters";
/// Total transmissions across all nodes and slots.
pub const SIM_TRANSMISSIONS: &str = "sim.transmissions";
/// Total successful receptions across all nodes and slots.
pub const SIM_RECEPTIONS: &str = "sim.receptions";
/// Nodes that had decided when the run stopped.
pub const SIM_DONE_NODES: &str = "sim.done_nodes";
/// Histogram of concurrent transmitters per slot.
pub const SIM_CHANNEL_LOAD: &str = "sim.channel_load";

/// Resolver slots fully served by certified grid bounds.
pub const RESOLVER_FAST_PATH_HITS: &str = "resolver.fast_path_hits";
/// Resolver slots that fell back to the exact O(k²) path.
pub const RESOLVER_EXACT_FALLBACKS: &str = "resolver.exact_fallbacks";
/// Grid cells scanned by the resolver's far-field accumulation.
pub const RESOLVER_CELLS_SCANNED: &str = "resolver.cells_scanned";
/// Fraction of resolver decisions served by the fast path.
pub const RESOLVER_HIT_RATE: &str = "resolver.hit_rate";
/// Transmitters incrementally inserted into the persistent grid
/// (start-transmitting delta entries applied).
pub const RESOLVER_DELTA_STARTED: &str = "resolver.delta.started";
/// Transmitters incrementally removed from the persistent grid
/// (stop-transmitting delta entries applied).
pub const RESOLVER_DELTA_STOPPED: &str = "resolver.delta.stopped";
/// Scheduled epoch rebuilds of the persistent transmitter grid.
pub const RESOLVER_DELTA_EPOCH_REBUILDS: &str = "resolver.delta.epoch_rebuilds";
/// Certified full rebuilds forced by a driver delta that failed
/// validation (zero when the driver's deltas are consistent).
pub const RESOLVER_DELTA_FULL_REBUILDS: &str = "resolver.delta.full_rebuilds";

/// MW protocol state transitions observed (any kind → any kind).
pub const MW_PHASE_TRANSITIONS: &str = "mw.phase_transitions";
/// Competition-counter resets observed (Lemma 5's collision signal).
pub const MW_COUNTER_RESETS: &str = "mw.counter_resets";
/// Maximum number of `A_i` levels any node entered.
pub const MW_LEVELS_ENTERED_MAX: &str = "mw.levels_entered.max";
/// Per-kind slot residency: slots all nodes spent in `A_i` listen halves.
pub const MW_RESIDENCY_LISTEN: &str = "mw.residency.listen";
/// Slots all nodes spent competing in `A_i`.
pub const MW_RESIDENCY_COMPETE: &str = "mw.residency.compete";
/// Slots all nodes spent in the request state `R`.
pub const MW_RESIDENCY_REQUEST: &str = "mw.residency.request";
/// Slots leaders spent serving color requests.
pub const MW_RESIDENCY_LEADER: &str = "mw.residency.leader";
/// Slots all nodes spent colored (in `C_j`) before the run ended.
pub const MW_RESIDENCY_COLORED: &str = "mw.residency.colored";

/// Theorem 1 (color classes stay independent): sweeps performed.
pub const PROBE_THM1_CHECKS: &str = "probe.thm1.checks";
/// Theorem 1: same-color neighbor pairs observed (must stay 0).
pub const PROBE_THM1_VIOLATIONS: &str = "probe.thm1.violations";
/// Lemma 4 (≤ φ(2R_T)+1 levels per node): nodes checked.
pub const PROBE_LEMMA4_CHECKS: &str = "probe.lemma4.checks";
/// Lemma 4: nodes that entered more levels than the bound allows.
pub const PROBE_LEMMA4_VIOLATIONS: &str = "probe.lemma4.violations";
/// Lemma 6 (bounded time in the `A_i` states): nodes checked.
pub const PROBE_LEMMA6_CHECKS: &str = "probe.lemma6.checks";
/// Lemma 6: nodes whose total `A_i` residency exceeded the bound.
pub const PROBE_LEMMA6_VIOLATIONS: &str = "probe.lemma6.violations";
/// Largest per-node `A_i` residency observed (gauge).
pub const PROBE_LEMMA6_MAX_SLOTS: &str = "probe.lemma6.max_slots";
/// Lemma 7 (bounded time in the request state `R`): nodes checked.
pub const PROBE_LEMMA7_CHECKS: &str = "probe.lemma7.checks";
/// Lemma 7: nodes whose `R` residency exceeded the bound.
pub const PROBE_LEMMA7_VIOLATIONS: &str = "probe.lemma7.violations";
/// Largest per-node `R` residency observed (gauge).
pub const PROBE_LEMMA7_MAX_SLOTS: &str = "probe.lemma7.max_slots";

/// Events pushed into the bounded ring over the whole run (retained +
/// evicted); exported into the metrics dump at end of run.
pub const OBS_EVENTS_RECORDED: &str = "obs.events.recorded";
/// Events evicted from the bounded ring (0 means the JSONL stream is
/// complete; nonzero means it was truncated oldest-first).
pub const OBS_EVENTS_DROPPED: &str = "obs.events.dropped";
/// Spans pushed into the bounded span ring over the whole run.
pub const OBS_SPANS_RECORDED: &str = "obs.spans.recorded";
/// Spans evicted from the bounded span ring (trace truncation signal).
pub const OBS_SPANS_DROPPED: &str = "obs.spans.dropped";

/// Allocation-profiler keys (`prof.alloc.*`). These are **profile-only**:
/// they appear in `profile_report` documents and user-driven exports,
/// never in the deterministic run_report/trace/series artifacts, because
/// allocation counts are a property of the build and allocator, not of
/// the seed. Each scope exports four counters through an
/// [`AllocKeySet`](crate::alloc::AllocKeySet).
pub mod prof {
    use crate::alloc::AllocKeySet;

    /// Traffic attributed to the engine `actions` phase (node automata).
    pub const PROF_ALLOC_ENGINE_ACTIONS: AllocKeySet = AllocKeySet {
        allocs: "prof.alloc.engine.actions.allocs",
        frees: "prof.alloc.engine.actions.frees",
        bytes_allocated: "prof.alloc.engine.actions.bytes_allocated",
        bytes_freed: "prof.alloc.engine.actions.bytes_freed",
    };
    /// Traffic attributed to the engine `resolve` phase (the SINR
    /// resolver's delta path).
    pub const PROF_ALLOC_ENGINE_RESOLVE: AllocKeySet = AllocKeySet {
        allocs: "prof.alloc.engine.resolve.allocs",
        frees: "prof.alloc.engine.resolve.frees",
        bytes_allocated: "prof.alloc.engine.resolve.bytes_allocated",
        bytes_freed: "prof.alloc.engine.resolve.bytes_freed",
    };
    /// Traffic attributed to the engine `delivery` phase (message
    /// delivery and the MW reception handlers).
    pub const PROF_ALLOC_ENGINE_DELIVERY: AllocKeySet = AllocKeySet {
        allocs: "prof.alloc.engine.delivery.allocs",
        frees: "prof.alloc.engine.delivery.frees",
        bytes_allocated: "prof.alloc.engine.delivery.bytes_allocated",
        bytes_freed: "prof.alloc.engine.delivery.bytes_freed",
    };
    /// Traffic attributed to MW setup: graph clone, node construction,
    /// simulator buffers — everything before slot 0.
    pub const PROF_ALLOC_MW_SETUP: AllocKeySet = AllocKeySet {
        allocs: "prof.alloc.mw.setup.allocs",
        frees: "prof.alloc.mw.setup.frees",
        bytes_allocated: "prof.alloc.mw.setup.bytes_allocated",
        bytes_freed: "prof.alloc.mw.setup.bytes_freed",
    };

    /// Heap high-water mark over the profiled run, in bytes (gauge).
    pub const PROF_ALLOC_HEAP_PEAK: &str = "prof.alloc.heap.peak";
    /// Slots before the last allocating slot, inclusive — the measured
    /// warmup length (gauge).
    pub const PROF_ALLOC_SLOTS_WARMUP: &str = "prof.alloc.slots.warmup";
    /// Mean allocations per slot over the steady-state window — the final
    /// quarter of executed slots (gauge; the zero-alloc gate pins it to 0
    /// for the fused sequential engine).
    pub const PROF_ALLOC_STEADY_ALLOCS_PER_SLOT: &str = "prof.alloc.steady.allocs_per_slot";
}
pub use prof::*;

/// Theorem 3 (TDMA schedule is interference-free): directed links audited.
pub const PROBE_THM3_LINKS: &str = "probe.thm3.links";
/// Theorem 3: links that failed to deliver in their scheduled frame.
pub const PROBE_THM3_VIOLATIONS: &str = "probe.thm3.violations";
/// Theorem 3: fraction of audited links that succeeded (gauge).
pub const PROBE_THM3_LINK_SUCCESS_RATE: &str = "probe.thm3.link_success_rate";
