//! `cargo xtask` — workspace automation.
//!
//! The only subcommand today is `lint`, the repo-specific static-analysis
//! pass (determinism, panic-freedom, paper-constant hygiene, lossy-cast
//! audit). See `docs/LINTING.md` for the lint catalog and the allowlist
//! format.
//!
//! Exit codes: 0 = clean, 1 = violations reported, 2 = usage or I/O error.

mod allowlist;
mod lexer;
mod lints;
mod report;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lints::Violation;
use report::Format;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
Usage: cargo xtask lint [--format text|json] [--allowlist PATH]

  --format text|json   report style (default: text)
  --allowlist PATH     allowlist file (default: <repo>/xtask-lint.toml;
                       a missing default file means an empty allowlist)";

fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        Some("--help" | "-h") | None => return Err("expected a subcommand: lint".to_string()),
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    }

    let mut format = Format::Text;
    let mut allowlist_path: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format requires a value")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist requires a path")?;
                allowlist_path = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let root = repo_root();
    let entries = load_allowlist(&root, allowlist_path.as_deref())?;

    let mut violations: Vec<Violation> = Vec::new();
    let mut files_scanned = 0usize;
    for file in rust_sources(&root) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        files_scanned += 1;
        violations.extend(lints::lint_file(&rel, &src));
    }

    // Partition into allowed and reported; remember which entries fired so
    // stale ones can be flagged.
    let mut used = vec![false; entries.len()];
    let mut reported = Vec::new();
    let mut allowed = 0usize;
    for v in violations {
        match entries.iter().position(|e| e.covers(&v)) {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => reported.push(v),
        }
    }
    let stale: Vec<&allowlist::AllowEntry> = entries
        .iter()
        .zip(&used)
        .filter_map(|(e, &u)| (!u).then_some(e))
        .collect();

    report::emit(format, &reported, files_scanned, allowed, &stale);
    Ok(reported.is_empty())
}

/// Workspace root: this crate lives at `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // root
    p
}

fn load_allowlist(
    root: &Path,
    explicit: Option<&Path>,
) -> Result<Vec<allowlist::AllowEntry>, String> {
    let (path, required) = match explicit {
        Some(p) => (p.to_path_buf(), true),
        None => (root.join("xtask-lint.toml"), false),
    };
    match std::fs::read_to_string(&path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) if !required => Ok(Vec::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Every `.rs` file under the workspace, excluding build output and VCS
/// metadata. Sorted for deterministic report order.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}
