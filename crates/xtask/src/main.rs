//! `cargo xtask` — workspace automation.
//!
//! The only subcommand today is `lint`, the repo-specific static-analysis
//! pass (determinism, panic-freedom, paper-constant hygiene, lossy-cast
//! audit, hot-path allocation audit). See `docs/LINTING.md` for the lint
//! catalog, `cargo xtask lint --explain L<n>` for any single rule, and
//! [`xtask::cli`] for the engine itself.
//!
//! Exit codes: 0 = clean, 1 = violations / ratchet regression / self-test
//! failure, 2 = usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xtask::cli::run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", xtask::cli::USAGE);
            ExitCode::from(2)
        }
    }
}
