//! `cargo xtask lint --self-test`: the engine checks itself against a
//! fixture tree of known-bad (and known-clean) files.
//!
//! Each fixture in `crates/xtask/fixtures/` is a `.rs` file that is **not**
//! compiled; its first line declares the workspace-relative path the lints
//! should pretend it lives at, and `//~ L<n>` trailing comments mark the
//! lines that must be flagged (several ids may follow one `//~`):
//!
//! ```text
//! //! fixture: crates/mac/src/fixture.rs
//! fn f() { q.unwrap(); } //~ L2
//! ```
//!
//! The self-test fails on any missed expectation **or any extra finding**,
//! so fixtures pin both detection and false-positive behavior. The normal
//! workspace walk skips `fixtures/` directories, so the deliberate
//! violations never reach `cargo xtask lint` itself.

use std::path::Path;

use crate::lints;

/// Outcome of one self-test run: fixtures checked and mismatches found.
pub struct SelfTest {
    /// Number of fixture files exercised.
    pub fixtures: usize,
    /// Human-readable mismatch descriptions (empty = pass).
    pub failures: Vec<String>,
}

/// Runs every fixture under `dir`. `Err` is an environment problem
/// (missing/unreadable tree); mismatches land in [`SelfTest::failures`].
pub fn run(dir: &Path) -> Result<SelfTest, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading fixtures dir {}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            path.extension().is_some_and(|x| x == "rs").then_some(path)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .rs fixtures under {}", dir.display()));
    }

    let mut out = SelfTest {
        fixtures: 0,
        failures: Vec::new(),
    };
    for path in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        out.fixtures += 1;
        check_fixture(&name, &src, &mut out.failures)?;
    }
    Ok(out)
}

fn check_fixture(name: &str, src: &str, failures: &mut Vec<String>) -> Result<(), String> {
    let first = src.lines().next().unwrap_or("");
    let pretend = first
        .strip_prefix("//! fixture: ")
        .ok_or_else(|| format!("{name}: first line must be `//! fixture: <pretend-path>`"))?
        .trim();

    let mut expected = expectations(name, src)?;
    let mut actual: Vec<(usize, &'static str)> = lints::lint_file(pretend, src)
        .into_iter()
        .map(|v| (v.line, v.lint))
        .collect();
    expected.sort_unstable();
    actual.sort_unstable();

    for &(line, lint) in &expected {
        if !actual.contains(&(line, lint)) {
            failures.push(format!(
                "{name}:{line}: expected {lint}, engine reported nothing"
            ));
        }
    }
    for &(line, lint) in &actual {
        if !expected.contains(&(line, lint)) {
            failures.push(format!("{name}:{line}: engine reported unexpected {lint}"));
        }
    }
    Ok(())
}

/// Parses the `//~ L<n> [L<m> …]` expectation comments.
fn expectations(name: &str, src: &str) -> Result<Vec<(usize, &'static str)>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let Some(at) = line.find("//~") else {
            continue;
        };
        for id in line[at + 3..].split_whitespace() {
            let rule = crate::rules::rule(id)
                .ok_or_else(|| format!("{name}:{}: unknown lint `{id}` in expectation", i + 1))?;
            out.push((i + 1, rule.id));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_expectations_parse_and_match() {
        let src = "//! fixture: crates/mac/src/fx.rs\nfn f() { q.unwrap(); } //~ L2\n";
        let mut failures = Vec::new();
        check_fixture("fx.rs", src, &mut failures).expect("well-formed");
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn missed_and_extra_findings_are_both_failures() {
        // Expects L2 on a clean line → "reported nothing".
        let src = "//! fixture: crates/mac/src/fx.rs\nfn f() {} //~ L2\n";
        let mut failures = Vec::new();
        check_fixture("fx.rs", src, &mut failures).expect("well-formed");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("reported nothing"));

        // Unannotated violation → "unexpected".
        let src = "//! fixture: crates/mac/src/fx.rs\nfn f() { q.unwrap(); }\n";
        let mut failures = Vec::new();
        check_fixture("fx.rs", src, &mut failures).expect("well-formed");
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("unexpected L2"));
    }

    #[test]
    fn malformed_fixtures_are_environment_errors() {
        let mut failures = Vec::new();
        assert!(check_fixture("fx.rs", "fn f() {}\n", &mut failures).is_err());
        let src = "//! fixture: crates/mac/src/fx.rs\nfn f() {} //~ L99\n";
        assert!(check_fixture("fx.rs", src, &mut failures).is_err());
    }
}
