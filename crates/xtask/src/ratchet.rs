//! The lint ratchet: per-lint violation budgets that may only decrease.
//!
//! `xtask-lint.ratchet` at the repo root pins, for every lint, the number
//! of *reported* (post-allowlist) violations the workspace is allowed to
//! carry. A count above its budget is a **regression** and fails the run;
//! a count below it is **slack** — the run warns so the budget gets
//! tightened (`--update-ratchet` rewrites the file to current counts).
//! A lint missing from the file has budget 0, so new lints start strict.
//!
//! File format: `#` comment lines, blank lines, and `L<n> = <count>`
//! entries, one per line.

use crate::rules;

/// Parsed budgets from `xtask-lint.ratchet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ratchet {
    budgets: Vec<(String, usize)>,
}

/// One lint's count-vs-budget comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Lint id.
    pub lint: String,
    /// Reported violations this run.
    pub count: usize,
    /// Budget from the ratchet file.
    pub budget: usize,
}

/// The outcome of checking current counts against the ratchet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Lints over budget (fail the run).
    pub regressions: Vec<Delta>,
    /// Lints under budget (warn: tighten the file).
    pub slack: Vec<Delta>,
}

impl Ratchet {
    /// Parses the ratchet file. Unknown lint ids and duplicate entries are
    /// errors so typos cannot silently grant an infinite budget.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut budgets: Vec<(String, usize)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `L<n> = <count>`", i + 1))?;
            let key = key.trim();
            let value = value.trim();
            if rules::rule(key).is_none() {
                return Err(format!("line {}: unknown lint id `{key}`", i + 1));
            }
            if budgets.iter().any(|(k, _)| k == key) {
                return Err(format!("line {}: duplicate entry for `{key}`", i + 1));
            }
            let count: usize = value
                .parse()
                .map_err(|_| format!("line {}: `{value}` is not a count", i + 1))?;
            budgets.push((key.to_string(), count));
        }
        Ok(Ratchet { budgets })
    }

    /// The budget for `lint` (0 when absent).
    pub fn budget(&self, lint: &str) -> usize {
        self.budgets
            .iter()
            .find(|(k, _)| k == lint)
            .map_or(0, |&(_, n)| n)
    }

    /// Compares per-lint counts against the budgets. `counts` must cover
    /// every lint (zeros included) so slack in unhit lints is seen too.
    pub fn check(&self, counts: &[(&str, usize)]) -> Outcome {
        let mut out = Outcome::default();
        for &(lint, count) in counts {
            let budget = self.budget(lint);
            let delta = Delta {
                lint: lint.to_string(),
                count,
                budget,
            };
            if count > budget {
                out.regressions.push(delta);
            } else if count < budget {
                out.slack.push(delta);
            }
        }
        out
    }
}

/// Renders a ratchet file pinning exactly `counts` (used by
/// `--update-ratchet`).
pub fn render(counts: &[(&str, usize)]) -> String {
    let mut out = String::from(
        "# xtask lint ratchet — per-lint budgets for *reported* (post-allowlist)\n\
         # violations. Counts may only go down: a run above a budget fails, a run\n\
         # below one warns. Tighten with `cargo xtask lint --update-ratchet`.\n",
    );
    for &(lint, count) in counts {
        out.push_str(&format!("{lint} = {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_entries() {
        let r = Ratchet::parse("# header\n\nL2 = 3\nL7 = 0\n").expect("parses");
        assert_eq!(r.budget("L2"), 3);
        assert_eq!(r.budget("L7"), 0);
        // Missing entry means zero budget.
        assert_eq!(r.budget("L9"), 0);
    }

    #[test]
    fn rejects_unknown_ids_duplicates_and_garbage() {
        assert!(Ratchet::parse("L12 = 0\n").is_err());
        assert!(Ratchet::parse("L2 = 1\nL2 = 2\n").is_err());
        assert!(Ratchet::parse("L2 = many\n").is_err());
        assert!(Ratchet::parse("L2: 1\n").is_err());
    }

    #[test]
    fn check_partitions_regressions_and_slack() {
        let r = Ratchet::parse("L2 = 2\nL8 = 1\n").expect("parses");
        let outcome = r.check(&[("L2", 3), ("L8", 0), ("L9", 0)]);
        assert_eq!(outcome.regressions.len(), 1);
        assert_eq!(outcome.regressions[0].lint, "L2");
        assert_eq!(
            (outcome.regressions[0].count, outcome.regressions[0].budget),
            (3, 2)
        );
        assert_eq!(outcome.slack.len(), 1);
        assert_eq!(outcome.slack[0].lint, "L8");
    }

    #[test]
    fn render_round_trips_through_parse() {
        let text = render(&[("L1", 0), ("L2", 4)]);
        let r = Ratchet::parse(&text).expect("rendered file parses");
        assert_eq!(r.budget("L2"), 4);
        assert_eq!(r.check(&[("L1", 0), ("L2", 4)]), Outcome::default());
    }
}
