//! The rule catalog: one entry per lint, with the rationale and remedy.
//!
//! These strings are the **single source of truth** for what each lint
//! means: `cargo xtask lint --explain L<n>` prints them, the SARIF emitter
//! embeds them as `rules[]` metadata, and `docs/LINTING.md` quotes the
//! titles verbatim (an e2e test checks the doc stays in sync).

/// One lint's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable identifier: `"L1"` … `"L11"`.
    pub id: &'static str,
    /// One-line name, quoted verbatim in `docs/LINTING.md`.
    pub title: &'static str,
    /// Why the construct is banned in this workspace.
    pub rationale: &'static str,
    /// What to write instead.
    pub fix: &'static str,
}

/// Every lint the engine knows, in id order.
pub const RULES: [Rule; 11] = [
    Rule {
        id: "L1",
        title: "no unseeded RNG",
        rationale: "Experiment results cite seeds; an entropy-based generator \
                    (thread_rng, from_entropy, OsRng) makes a run impossible to \
                    reproduce and silently invalidates every determinism test.",
        fix: "Construct generators only via sinr_rng::SeedableRng::seed_from_u64, \
              deriving per-node seeds from the run seed.",
    },
    Rule {
        id: "L2",
        title: "no panics in library code",
        rationale: "A panic in a library crate aborts a million-node simulation \
                    hours in; callers cannot recover or even log the run state.",
        fix: "Return a Result through the crate's error type; if the invariant \
              truly cannot fail, document it and allowlist the site in \
              xtask-lint.toml with a reason.",
    },
    Rule {
        id: "L3",
        title: "paper constants only in their audited homes",
        rationale: "The paper's formula constants (the 96 of R_I, the 32 of the \
                    Theorem-3 guard distance, the 16 of its interference bound) \
                    restated at call sites drift independently when the model \
                    is tuned, and the reproduction stops matching the paper.",
        fix: "Derive the value from sinr_model::SinrConfig \
              (crates/sinr/src/config.rs) or MwParams (crates/core/src/params.rs) \
              instead of restating it.",
    },
    Rule {
        id: "L4",
        title: "no lossy id/slot-counter casts",
        rationale: "Node ids are usize and slot counters u64 throughout; a \
                    narrowing cast (as u32, as u16, …) truncates silently at \
                    scale, `as i64` wraps slot counters above 2^63, and `as u64` \
                    on an expression with subtraction wraps negatives to huge \
                    values — all without any signal.",
        fix: "Use TryFrom/try_into with explicit error handling (e.g. \
              i64::try_from(x).unwrap_or(i64::MAX) where saturation is the \
              documented intent), and compute differences in signed or float \
              arithmetic before converting.",
    },
    Rule {
        id: "L5",
        title: "no console output in library code",
        rationale: "Library prints interleave nondeterministically with the \
                    driver's output and bypass the telemetry layer, so runs \
                    stop being machine-comparable.",
        fix: "Record through sinr_obs::Recorder and let the binary choose a \
              sink; the sanctioned sinks live in crates/obs/src/sink.rs.",
    },
    Rule {
        id: "L6",
        title: "no threading primitives outside crates/pool",
        rationale: "Ad-hoc std::thread/std::sync use invites merge orders that \
                    depend on OS scheduling; the workspace's bit-identical \
                    outputs rely on every parallel construct flowing through \
                    one audited home.",
        fix: "Run parallel work through sinr_pool::Pool (static partitioning, \
              thread-ordered merges) so outputs stay identical for every \
              thread count.",
    },
    Rule {
        id: "L7",
        title: "no entropy-keyed hash collections in library code",
        rationale: "std's HashMap/HashSet default to RandomState, which draws a \
                    fresh hash key per process: iteration order differs between \
                    runs, so any code that visits entries becomes a hidden \
                    source of nondeterminism.",
        fix: "Use sinr_rng::DetHashMap/DetHashSet (fixed-key hasher, same API; \
              iteration order is a pure function of the insertion sequence), or \
              a BTree collection when visit order should be meaningful.",
    },
    Rule {
        id: "L8",
        title: "hot paths must not allocate or format",
        rationale: "Items marked `// lint:hot` are the per-slot inner loops \
                    (SINR resolution, the engine's slot phases); a stray \
                    Vec::new, format!, or .clone() there turns an \
                    allocation-free loop into millions of allocator calls and \
                    wrecks the perf baseline in ways profilers only show later.",
        fix: "Preallocate scratch buffers outside the loop (ChunkScratch-style), \
              write into &mut slices, and hoist formatting/cloning to a cold \
              path; allowlist a site only with a measured justification.",
    },
    Rule {
        id: "L9",
        title: "float→int casts go through checked helpers",
        rationale: "A bare `expr as usize/u64/i64` on a float saturates \
                    silently — NaN becomes 0 and out-of-range values clamp — \
                    which is indistinguishable from correct rounding until an \
                    extreme density or corrupted input produces garbage \
                    geometry.",
        fix: "Route the conversion through sinr_geometry::cast \
              (floor_usize, ceil_i64, …): debug builds trap NaN and \
              out-of-range values, release builds keep the documented \
              saturating behavior.",
    },
    Rule {
        id: "L10",
        title: "allocator hooks only in binaries",
        rationale: "A `#[global_allocator]` in a library crate forces the \
                    counting allocator on every downstream binary — profiled \
                    and production alike — and direct std::alloc calls bypass \
                    the per-phase attribution entirely, so the heap ledger \
                    stops meaning what the profile reports claim.",
        fix: "Install sinr_obs::alloc::CountingAlloc only in a binary or bench \
              target; the allocator implementation itself lives solely in \
              crates/obs/src/alloc.rs, and library code observes the heap \
              through its snapshot()/AllocScope API.",
    },
    Rule {
        id: "L11",
        title: "hot paths use static dispatch",
        rationale: "A `dyn` coercion inside a `// lint:hot` item puts an \
                    indirect call in a per-slot inner loop — one vtable jump \
                    per node per slot that the compiler cannot inline or \
                    specialize, which is exactly the cost the generic \
                    `Protocol::begin_slot<R: SlotRng>` redesign removed.",
        fix: "Make the callee generic over the trait so each call site \
              monomorphizes (static dispatch); trait-object *parameters* \
              received from a cold caller are fine — the ban is on erasing \
              a type inside the hot body. Hoist unavoidable dynamic calls \
              to a cold path.",
    },
];

/// Looks up a rule by id (`"L1"` … `"L11"`).
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// The `--explain` text for one rule.
pub fn explain(id: &str) -> Option<String> {
    let r = rule(id)?;
    Some(format!(
        "{} — {}\n\nWhy:\n  {}\n\nFix:\n  {}\n\nScope and allowlisting: see docs/LINTING.md.",
        r.id, r.title, r.rationale, r.fix
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_ordered() {
        assert_eq!(RULES.len(), 11);
        for (i, r) in RULES.iter().enumerate() {
            assert_eq!(r.id, format!("L{}", i + 1));
            assert!(!r.title.is_empty() && !r.rationale.is_empty() && !r.fix.is_empty());
        }
    }

    #[test]
    fn explain_renders_known_rules_and_rejects_unknown() {
        let text = explain("L7").expect("L7 exists");
        assert!(text.contains("RandomState"));
        assert!(text.contains("DetHashMap"));
        assert!(explain("L42").is_none());
        assert!(explain("l7").is_none());
    }
}
