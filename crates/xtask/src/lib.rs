//! Workspace automation library: the repo-specific static-analysis engine
//! behind `cargo xtask lint`.
//!
//! The binary (`src/main.rs`) is a thin wrapper over [`cli::run`]; the
//! engine is a library so the integration tests (and any future tooling)
//! can drive the lexer, lints, rule catalog, and reporters directly.
//!
//! Module map:
//!
//! * [`lexer`] — byte-offset-preserving masking, `#[cfg(test)]` regions,
//!   and the brace-matched item tree (`fn`/`impl`/`mod` spans).
//! * [`lints`] — the lint implementations L1–L10 over masked source.
//! * [`rules`] — the rule catalog (id, title, rationale, fix): the single
//!   source of truth for `--explain`, SARIF metadata, and the docs.
//! * [`allowlist`] — vetted exceptions (`xtask-lint.toml`).
//! * [`ratchet`] — per-lint budgets that may only decrease
//!   (`xtask-lint.ratchet`).
//! * [`report`] — text / JSON (schema v2) / SARIF 2.1.0 emitters.
//! * [`selftest`] — the fixture-tree self-check (`lint --self-test`).
//! * [`cli`] — argument parsing, the workspace walk, and orchestration.

pub mod allowlist;
pub mod cli;
pub mod lexer;
pub mod lints;
pub mod ratchet;
pub mod report;
pub mod rules;
pub mod selftest;
