//! Argument parsing, the workspace walk, and run orchestration for
//! `cargo xtask lint`.
//!
//! Exit codes (mapped by `src/main.rs`): `Ok(true)` = clean (0),
//! `Ok(false)` = findings / ratchet regression / self-test failure (1),
//! `Err` = usage or I/O error (2).

use std::path::{Path, PathBuf};

use crate::lexer;
use crate::lints::{self, Violation};
use crate::ratchet::{self, Ratchet};
use crate::report::{self, Format, RunReport};
use crate::rules;
use crate::selftest;

/// The `--help` text.
pub const USAGE: &str = "\
Usage: cargo xtask lint [options]

  --format text|json|sarif  report style (default: text; json is schema v2,
                            sarif is SARIF 2.1.0 for code-scanning uploads)
  --allowlist PATH          allowlist file (default: <repo>/xtask-lint.toml;
                            a missing default file means an empty allowlist)
  --ratchet PATH            ratchet file (default: <repo>/xtask-lint.ratchet;
                            a missing default file skips the ratchet check)
  --update-ratchet          rewrite the ratchet file to current counts
  --explain L<n>            print one rule's rationale and fix, then exit
  --self-test               run the engine against crates/xtask/fixtures/";

struct Options {
    format: Format,
    allowlist_path: Option<PathBuf>,
    ratchet_path: Option<PathBuf>,
    update_ratchet: bool,
}

/// Runs the CLI. `Ok(true)` means the run is clean.
pub fn run(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        Some("--help" | "-h") | None => return Err("expected a subcommand: lint".to_string()),
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    }

    let mut opts = Options {
        format: Format::Text,
        allowlist_path: None,
        ratchet_path: None,
        update_ratchet: false,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format requires a value")?;
                opts.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
                };
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist requires a path")?;
                opts.allowlist_path = Some(PathBuf::from(v));
            }
            "--ratchet" => {
                let v = it.next().ok_or("--ratchet requires a path")?;
                opts.ratchet_path = Some(PathBuf::from(v));
            }
            "--update-ratchet" => opts.update_ratchet = true,
            "--explain" => {
                let id = it.next().ok_or("--explain requires a lint id (L1…L10)")?;
                let text = rules::explain(id)
                    .ok_or_else(|| format!("unknown lint `{id}` (expected L1…L10)"))?;
                println!("{text}");
                return Ok(true);
            }
            "--self-test" => return run_self_test(),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    lint_workspace(&opts)
}

fn run_self_test() -> Result<bool, String> {
    let dir = repo_root().join("crates/xtask/fixtures");
    let result = selftest::run(&dir)?;
    for f in &result.failures {
        println!("self-test mismatch: {f}");
    }
    println!(
        "xtask lint --self-test: {} fixture(s), {} mismatch(es)",
        result.fixtures,
        result.failures.len()
    );
    Ok(result.failures.is_empty())
}

fn lint_workspace(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let entries = load_allowlist(&root, opts.allowlist_path.as_deref())?;

    // Read every source first: the sibling-test-file pass needs the whole
    // set of `#[cfg(test)] mod name;` declarations before linting starts.
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in rust_sources(&root) {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        sources.push((rel, src));
    }
    let files_scanned = sources.len();

    // Files declared as `#[cfg(test)] mod name;` resolve to sibling files
    // that are test-only despite their path not containing /tests/.
    let mut test_siblings: Vec<String> = Vec::new();
    for (rel, src) in &sources {
        let masked = lexer::mask_non_code(src);
        for name in lexer::find_test_mod_decls(&masked) {
            test_siblings.extend(sibling_candidates(rel, &name));
        }
    }

    let mut violations: Vec<Violation> = Vec::new();
    for (rel, src) in &sources {
        if test_siblings.iter().any(|t| t == rel) {
            continue;
        }
        violations.extend(lints::lint_file(rel, src));
    }

    // Partition into allowed and reported; remember which entries fired so
    // stale ones can be flagged.
    let mut used = vec![false; entries.len()];
    let mut reported = Vec::new();
    let mut allowed = 0usize;
    for v in violations {
        match entries.iter().position(|e| e.covers(&v)) {
            Some(i) => {
                used[i] = true;
                allowed += 1;
            }
            None => reported.push(v),
        }
    }
    let stale: Vec<&crate::allowlist::AllowEntry> = entries
        .iter()
        .zip(&used)
        .filter_map(|(e, &u)| (!u).then_some(e))
        .collect();

    // Ratchet: per-lint counts of *reported* violations, zeros included so
    // slack in unhit lints is visible.
    let counts: Vec<(&str, usize)> = rules::RULES
        .iter()
        .map(|r| (r.id, reported.iter().filter(|v| v.lint == r.id).count()))
        .collect();
    let ratchet_file = opts
        .ratchet_path
        .clone()
        .unwrap_or_else(|| root.join("xtask-lint.ratchet"));
    if opts.update_ratchet {
        std::fs::write(&ratchet_file, ratchet::render(&counts))
            .map_err(|e| format!("writing {}: {e}", ratchet_file.display()))?;
    }
    let outcome = load_ratchet(
        &ratchet_file,
        opts.ratchet_path.is_some() || opts.update_ratchet,
    )?
    .map(|r| r.check(&counts));

    report::emit(
        opts.format,
        &RunReport {
            reported: &reported,
            files_scanned,
            allowed,
            stale: &stale,
            ratchet: outcome.as_ref(),
        },
    );
    // With a ratchet in force, the budgets govern: known debt is tolerated
    // (and may only shrink); without one, any reported violation fails.
    Ok(match &outcome {
        Some(o) => o.regressions.is_empty(),
        None => reported.is_empty(),
    })
}

/// Workspace root: this crate lives at `<root>/crates/xtask`.
pub fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // root
    p
}

fn load_allowlist(
    root: &Path,
    explicit: Option<&Path>,
) -> Result<Vec<crate::allowlist::AllowEntry>, String> {
    let (path, required) = match explicit {
        Some(p) => (p.to_path_buf(), true),
        None => (root.join("xtask-lint.toml"), false),
    };
    match std::fs::read_to_string(&path) {
        Ok(text) => crate::allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) if !required => Ok(Vec::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

fn load_ratchet(path: &Path, required: bool) -> Result<Option<Ratchet>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ratchet::parse(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(_) if !required => Ok(None),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// The sibling files a `#[cfg(test)] mod <name>;` declaration in `rel`
/// can resolve to (2015 and 2018 module layouts).
fn sibling_candidates(rel: &str, name: &str) -> Vec<String> {
    let (dir, file) = match rel.rsplit_once('/') {
        Some((d, f)) => (d, f),
        None => ("", rel),
    };
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    let base = if matches!(stem, "lib" | "main" | "mod") {
        dir.to_string()
    } else if dir.is_empty() {
        stem.to_string()
    } else {
        format!("{dir}/{stem}")
    };
    vec![format!("{base}/{name}.rs"), format!("{base}/{name}/mod.rs")]
}

/// Every `.rs` file under the workspace, excluding build output, VCS
/// metadata, and lint fixture trees (deliberate violations). Sorted for
/// deterministic report order.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_candidates_cover_both_module_layouts() {
        assert_eq!(
            sibling_candidates("crates/mac/src/localcast.rs", "harness"),
            vec![
                "crates/mac/src/localcast/harness.rs".to_string(),
                "crates/mac/src/localcast/harness/mod.rs".to_string(),
            ]
        );
        assert_eq!(
            sibling_candidates("crates/mac/src/lib.rs", "harness"),
            vec![
                "crates/mac/src/harness.rs".to_string(),
                "crates/mac/src/harness/mod.rs".to_string(),
            ]
        );
        assert_eq!(
            sibling_candidates("crates/mac/src/sub/mod.rs", "harness"),
            vec![
                "crates/mac/src/sub/harness.rs".to_string(),
                "crates/mac/src/sub/harness/mod.rs".to_string(),
            ]
        );
    }

    #[test]
    fn unknown_flags_and_subcommands_are_usage_errors() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(run(&args(&["lint", "--bogus"])).is_err());
        assert!(run(&args(&["fmt"])).is_err());
        assert!(run(&args(&[])).is_err());
        assert!(run(&args(&["lint", "--format", "xml"])).is_err());
        assert!(run(&args(&["lint", "--explain", "L99"])).is_err());
    }
}
