//! Text, JSON, and SARIF report emitters.
//!
//! The JSON schema (stable, versioned — consumed by CI tooling and
//! round-tripped through `sinr_obs::json` in the e2e tests):
//!
//! ```json
//! {
//!   "version": 2,
//!   "summary": {"files_scanned": N, "allowed": N, "reported": N},
//!   "violations": [
//!     {"lint": "L2", "file": "…", "line": 12, "col": 5,
//!      "message": "…", "snippet": "…"}
//!   ],
//!   "stale_allows": [{"lint": "L2", "path": "…", "pattern": "…", "defined_at": N}],
//!   "ratchet": {"checked": true,
//!               "regressions": [{"lint": "L8", "count": 2, "budget": 0}],
//!               "slack": [{"lint": "L2", "count": 1, "budget": 3}]}
//! }
//! ```
//!
//! Schema history: v1 had no `col` on violations and no `ratchet` section.
//!
//! `--format sarif` emits SARIF 2.1.0 with the rule catalog embedded, so
//! code-scanning UIs can show the rationale next to each finding.

use crate::allowlist::AllowEntry;
use crate::lints::Violation;
use crate::ratchet;
use crate::rules;

/// Report style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable, one block per violation.
    Text,
    /// Machine-readable single JSON object on stdout (schema v2 above).
    Json,
    /// SARIF 2.1.0 on stdout (for code-scanning uploads).
    Sarif,
}

/// Everything one run produced, ready to render.
pub struct RunReport<'a> {
    /// Violations that survived the allowlist.
    pub reported: &'a [Violation],
    /// Files scanned (including sibling test files that were then skipped).
    pub files_scanned: usize,
    /// Violations suppressed by the allowlist.
    pub allowed: usize,
    /// Allowlist entries that matched nothing.
    pub stale: &'a [&'a AllowEntry],
    /// Ratchet comparison, when a ratchet file was checked.
    pub ratchet: Option<&'a ratchet::Outcome>,
}

/// Prints the report for one run.
pub fn emit(format: Format, r: &RunReport<'_>) {
    match format {
        Format::Text => emit_text(r),
        Format::Json => println!("{}", render_json(r)),
        Format::Sarif => println!("{}", render_sarif(r.reported)),
    }
}

fn emit_text(r: &RunReport<'_>) {
    for v in r.reported {
        println!("{}: {}:{}:{}", v.lint, v.file, v.line, v.col);
        println!("  {}", v.message);
        if !v.snippet.is_empty() {
            println!("  | {}", v.snippet);
        }
        println!();
    }
    for e in r.stale {
        println!(
            "warning: stale allowlist entry (xtask-lint.toml:{}) — {} {} `{}` matched nothing; \
             remove it",
            e.defined_at, e.lint, e.path, e.pattern
        );
    }
    if let Some(outcome) = r.ratchet {
        for d in &outcome.slack {
            println!(
                "warning: ratchet slack — {} reports {} violation(s), budget is {}; \
                 tighten with `cargo xtask lint --update-ratchet`",
                d.lint, d.count, d.budget
            );
        }
        for d in &outcome.regressions {
            println!(
                "ratchet regression: {} reports {} violation(s), budget is {} \
                 (xtask-lint.ratchet) — fix the new sites or allowlist them with a reason",
                d.lint, d.count, d.budget
            );
        }
    }
    println!(
        "xtask lint: {} file(s) scanned, {} violation(s) reported, {} allowlisted",
        r.files_scanned,
        r.reported.len(),
        r.allowed
    );
    if !r.reported.is_empty() {
        println!("see docs/LINTING.md for the lint catalog and the allowlist format");
        println!("run `cargo xtask lint --explain <lint>` for any rule's rationale and fix");
    }
}

fn render_json(r: &RunReport<'_>) -> String {
    let mut out = String::from("{\"version\":2,\"summary\":{");
    out.push_str(&format!(
        "\"files_scanned\":{},\"allowed\":{},\"reported\":{}",
        r.files_scanned,
        r.allowed,
        r.reported.len()
    ));
    out.push_str("},\"violations\":[");
    for (i, v) in r.reported.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_str(v.lint),
            json_str(&v.file),
            v.line,
            v.col,
            json_str(&v.message),
            json_str(&v.snippet)
        ));
    }
    out.push_str("],\"stale_allows\":[");
    for (i, e) in r.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"path\":{},\"pattern\":{},\"defined_at\":{}}}",
            json_str(&e.lint),
            json_str(&e.path),
            json_str(&e.pattern),
            e.defined_at
        ));
    }
    out.push_str("],\"ratchet\":");
    match r.ratchet {
        None => out.push_str("{\"checked\":false,\"regressions\":[],\"slack\":[]}"),
        Some(o) => {
            out.push_str("{\"checked\":true,\"regressions\":[");
            push_deltas(&mut out, &o.regressions);
            out.push_str("],\"slack\":[");
            push_deltas(&mut out, &o.slack);
            out.push_str("]}");
        }
    }
    out.push('}');
    out
}

fn push_deltas(out: &mut String, deltas: &[ratchet::Delta]) {
    for (i, d) in deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"count\":{},\"budget\":{}}}",
            json_str(&d.lint),
            d.count,
            d.budget
        ));
    }
}

/// Renders the findings as a SARIF 2.1.0 log with the full rule catalog.
pub fn render_sarif(reported: &[Violation]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"xtask-lint\",\
         \"informationUri\":\"docs/LINTING.md\",\"rules\":[",
    );
    for (i, rule) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"fullDescription\":{{\"text\":{}}},\"help\":{{\"text\":{}}}}}",
            json_str(rule.id),
            json_str(rule.title),
            json_str(rule.rationale),
            json_str(rule.fix)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, v) in reported.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_str(v.lint),
            json_str(&v.message),
            json_str(&v.file),
            v.line,
            v.col
        ));
    }
    out.push_str("]}]}");
    out
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation() -> Violation {
        Violation {
            lint: "L8",
            file: "crates/sinr/src/resolver.rs".to_string(),
            line: 7,
            col: 13,
            message: "allocation in hot item".to_string(),
            snippet: "let v = Vec::new();".to_string(),
        }
    }

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_control_bytes() {
        assert_eq!(json_str(r#"a"b\c"#), r#""a\"b\\c""#);
        assert_eq!(json_str("x\ny\tz"), r#""x\ny\tz""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_str("plain"), r#""plain""#);
    }

    #[test]
    fn json_report_is_version_2_with_columns_and_ratchet() {
        let v = [violation()];
        let outcome = ratchet::Outcome {
            regressions: vec![ratchet::Delta {
                lint: "L8".to_string(),
                count: 1,
                budget: 0,
            }],
            slack: vec![],
        };
        let r = RunReport {
            reported: &v,
            files_scanned: 3,
            allowed: 1,
            stale: &[],
            ratchet: Some(&outcome),
        };
        let json = render_json(&r);
        assert!(json.starts_with("{\"version\":2,"));
        assert!(json.contains("\"col\":13"));
        assert!(json.contains("\"ratchet\":{\"checked\":true"));
        assert!(json.contains("\"regressions\":[{\"lint\":\"L8\",\"count\":1,\"budget\":0}]"));
    }

    #[test]
    fn json_report_marks_unchecked_ratchet() {
        let r = RunReport {
            reported: &[],
            files_scanned: 0,
            allowed: 0,
            stale: &[],
            ratchet: None,
        };
        assert!(render_json(&r).contains("\"ratchet\":{\"checked\":false"));
    }

    #[test]
    fn sarif_embeds_rules_and_locations() {
        let v = [violation()];
        let sarif = render_sarif(&v);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"id\":\"L1\""));
        assert!(sarif.contains("\"id\":\"L9\""));
        assert!(sarif.contains("\"ruleId\":\"L8\""));
        assert!(sarif.contains("\"startLine\":7,\"startColumn\":13"));
        assert!(sarif.contains("crates/sinr/src/resolver.rs"));
    }
}
