//! Text and JSON report emitters.
//!
//! The JSON schema (stable, versioned — consumed by CI tooling):
//!
//! ```json
//! {
//!   "version": 1,
//!   "summary": {"files_scanned": N, "allowed": N, "reported": N},
//!   "violations": [
//!     {"lint": "L2", "file": "…", "line": 12, "message": "…", "snippet": "…"}
//!   ],
//!   "stale_allows": [{"lint": "L2", "path": "…", "pattern": "…", "defined_at": N}]
//! }
//! ```

use crate::allowlist::AllowEntry;
use crate::lints::Violation;

/// Report style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable, one block per violation.
    Text,
    /// Machine-readable single JSON object on stdout.
    Json,
}

/// Prints the report for one run.
pub fn emit(
    format: Format,
    reported: &[Violation],
    files_scanned: usize,
    allowed: usize,
    stale: &[&AllowEntry],
) {
    match format {
        Format::Text => emit_text(reported, files_scanned, allowed, stale),
        Format::Json => emit_json(reported, files_scanned, allowed, stale),
    }
}

fn emit_text(reported: &[Violation], files_scanned: usize, allowed: usize, stale: &[&AllowEntry]) {
    for v in reported {
        println!("{}: {}:{}", v.lint, v.file, v.line);
        println!("  {}", v.message);
        if !v.snippet.is_empty() {
            println!("  | {}", v.snippet);
        }
        println!();
    }
    for e in stale {
        println!(
            "warning: stale allowlist entry (xtask-lint.toml:{}) — {} {} `{}` matched nothing; \
             remove it",
            e.defined_at, e.lint, e.path, e.pattern
        );
    }
    println!(
        "xtask lint: {} file(s) scanned, {} violation(s) reported, {} allowlisted",
        files_scanned,
        reported.len(),
        allowed
    );
    if !reported.is_empty() {
        println!("see docs/LINTING.md for the lint catalog and the allowlist format");
    }
}

fn emit_json(reported: &[Violation], files_scanned: usize, allowed: usize, stale: &[&AllowEntry]) {
    let mut out = String::from("{\"version\":1,\"summary\":{");
    out.push_str(&format!(
        "\"files_scanned\":{files_scanned},\"allowed\":{allowed},\"reported\":{}",
        reported.len()
    ));
    out.push_str("},\"violations\":[");
    for (i, v) in reported.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"file\":{},\"line\":{},\"message\":{},\"snippet\":{}}}",
            json_str(v.lint),
            json_str(&v.file),
            v.line,
            json_str(&v.message),
            json_str(&v.snippet)
        ));
    }
    out.push_str("],\"stale_allows\":[");
    for (i, e) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":{},\"path\":{},\"pattern\":{},\"defined_at\":{}}}",
            json_str(&e.lint),
            json_str(&e.path),
            json_str(&e.pattern),
            e.defined_at
        ));
    }
    out.push_str("]}");
    println!("{out}");
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_backslashes_and_control_bytes() {
        assert_eq!(json_str(r#"a"b\c"#), r#""a\"b\\c""#);
        assert_eq!(json_str("x\ny\tz"), r#""x\ny\tz""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_str("plain"), r#""plain""#);
    }
}
