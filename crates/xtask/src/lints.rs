//! The repo-specific lints L1–L6 (see `docs/LINTING.md`).
//!
//! All lints operate on *masked* source (comments and literal contents
//! blanked — see [`crate::lexer`]) so tokens inside strings and docs never
//! trigger, and honor `#[cfg(test)]` regions.

use crate::lexer::{find_test_regions, line_of, mask_non_code, TestRegion};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint identifier: `"L1"` … `"L6"`.
    pub lint: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The library crates whose non-test code must be panic-free (L2), free
/// of lossy id/slot casts (L4), and console-silent (L5).
pub const LIB_CRATES: [&str; 7] = [
    "crates/geometry/",
    "crates/sinr/",
    "crates/radiosim/",
    "crates/core/",
    "crates/mac/",
    "crates/obs/",
    "crates/pool/",
];

/// Files allowed to spell out paper constants (L3): the audited definitions.
pub const CONSTANT_HOMES: [&str; 2] = ["crates/sinr/src/config.rs", "crates/core/src/params.rs"];

/// Entropy-based RNG constructors banned outside `#[cfg(test)]` (L1).
const L1_TOKENS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "ThreadRng",
    "OsRng",
];

/// Panicking constructs banned in library non-test code (L2).
const L2_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Paper-formula magic values (L3): the `96` of `R_I`, the `32` of the
/// Theorem-3 guard distance `d`, and the `16` of the Theorem-3 proof's
/// interference bound. Only their audited homes may spell these out.
const L3_TOKENS: [&str; 3] = ["96.0", "32.0", "16.0"];

/// Narrowing integer casts (L4): node ids are `usize` and slot counters
/// `u64` throughout; casting them to anything smaller silently truncates.
const L4_TOKENS: [&str; 6] = ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

/// Console-output macros banned in library non-test code (L5): libraries
/// record through `sinr_obs::Recorder`; only the sanctioned sinks in
/// `crates/obs/src/sink.rs` (allowlisted) may print.
const L5_TOKENS: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// Threading primitives banned outside `crates/pool` (L6): every thread
/// and every synchronization primitive in the workspace flows through
/// the deterministic worker pool, so outputs stay bit-identical for any
/// thread count and there is exactly one place to audit for ordering.
const L6_TOKENS: [&str; 4] = ["std::thread", "std::sync", "thread::spawn", "thread::scope"];

/// The one crate allowed to touch threading primitives directly (L6).
pub const THREADING_HOME: &str = "crates/pool/";

/// Whether `path` (workspace-relative, forward slashes) is test-only code:
/// integration tests, benches, or proptest suites.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

fn in_lib_crate(path: &str) -> bool {
    LIB_CRATES
        .iter()
        .any(|c| path.starts_with(c) && path[c.len()..].starts_with("src/"))
}

fn is_constant_home(path: &str) -> bool {
    CONSTANT_HOMES.contains(&path)
}

/// A word boundary for identifier-like tokens: the neighbor byte must not
/// continue an identifier.
fn ident_boundary(masked: &str, start: usize, len: usize) -> bool {
    let b = masked.as_bytes();
    let before_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
    let end = start + len;
    let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
    before_ok && after_ok
}

/// A numeric boundary: the token must not be part of a longer number
/// (`132.0`, `96.05`), but float suffixes (`32.0f64`, `32.0_f64`) still
/// count as the constant.
fn numeric_boundary(masked: &str, start: usize, len: usize) -> bool {
    let b = masked.as_bytes();
    let before_ok = start == 0
        || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_' || b[start - 1] == b'.');
    let rest = &b[start + len..];
    let after_ok = match rest.first() {
        None => true,
        Some(c) if c.is_ascii_digit() => false,
        Some(&c) if c == b'_' || c == b'f' => {
            let r = if c == b'_' { &rest[1..] } else { rest };
            (r.starts_with(b"f64") || r.starts_with(b"f32"))
                && (r.len() == 3 || !(r[3].is_ascii_alphanumeric() || r[3] == b'_'))
        }
        Some(_) => true,
    };
    before_ok && after_ok
}

fn line_text(src: &str, line: usize) -> String {
    src.lines().nth(line - 1).unwrap_or("").trim().to_string()
}

fn in_test_region(regions: &[TestRegion], line: usize) -> bool {
    regions
        .iter()
        .any(|r| (r.start_line..=r.end_line).contains(&line))
}

struct TokenScan<'a> {
    token: &'a str,
    boundary: fn(&str, usize, usize) -> bool,
}

/// One file's scan state: the original source, its masked form, and the
/// `#[cfg(test)]` regions (always exempt from every lint).
struct FileCtx<'a> {
    path: &'a str,
    src: &'a str,
    masked: String,
    regions: Vec<TestRegion>,
}

impl FileCtx<'_> {
    fn scan(
        &self,
        scans: &[TokenScan<'_>],
        lint: &'static str,
        message: &dyn Fn(&str) -> String,
        out: &mut Vec<Violation>,
    ) {
        for s in scans {
            let mut from = 0usize;
            while let Some(rel) = self.masked[from..].find(s.token) {
                let at = from + rel;
                from = at + 1;
                if !(s.boundary)(&self.masked, at, s.token.len()) {
                    continue;
                }
                let line = line_of(&self.masked, at);
                if in_test_region(&self.regions, line) {
                    continue;
                }
                out.push(Violation {
                    lint,
                    file: self.path.to_string(),
                    line,
                    message: message(s.token),
                    snippet: line_text(self.src, line),
                });
            }
        }
    }
}

/// Runs every applicable lint over one file. `path` must be
/// workspace-relative with forward slashes.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let masked = mask_non_code(src);
    let regions = find_test_regions(&masked);
    let ctx = FileCtx {
        path,
        src,
        masked,
        regions,
    };
    let mut out = Vec::new();

    // L1 — no unseeded RNG anywhere outside test code. Applies to every
    // production file in the workspace: determinism is load-bearing
    // (tests/determinism.rs; experiment results cite seeds).
    if !is_test_path(path) {
        let scans: Vec<TokenScan> = L1_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L1",
            &|t| {
                format!(
                    "unseeded RNG source `{t}`: construct generators only via \
                     sinr_rng::SeedableRng::seed_from_u64 so runs are reproducible"
                )
            },
            &mut out,
        );
    }

    // L2 — no panicking constructs in library non-test code.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L2_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: |m, s, l| {
                    // `.unwrap()` / `.expect(` start with '.', macros need
                    // an identifier boundary on the left only.
                    let b = m.as_bytes();
                    if b[s] == b'.' {
                        true
                    } else {
                        ident_boundary(m, s, l - 1) // exclude the trailing `!`/`(`
                    }
                },
            })
            .collect();
        ctx.scan(
            &scans,
            "L2",
            &|t| {
                format!(
                    "panicking construct `{t}` in library code: return a Result \
                     through the crate's error type, or document the invariant and \
                     allowlist it in xtask-lint.toml"
                )
            },
            &mut out,
        );
    }

    // L3 — paper-formula constants only in their audited homes.
    if !is_test_path(path) && !is_constant_home(path) {
        let scans: Vec<TokenScan> = L3_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: numeric_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L3",
            &|t| {
                format!(
                    "paper constant `{t}` outside its audited home: derive it from \
                     sinr_model::SinrConfig (crates/sinr/src/config.rs) or \
                     MwParams (crates/core/src/params.rs) instead of restating it"
                )
            },
            &mut out,
        );
    }

    // L4 — no narrowing casts on ids/slot counters in library code.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L4_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L4",
            &|t| {
                format!(
                    "narrowing cast `{t}`: node ids are usize and slot counters \
                     u64; use TryFrom/try_into with explicit error handling"
                )
            },
            &mut out,
        );
    }

    // L5 — no console output in library code: everything observable goes
    // through a Recorder; the binary (CLI, bench) decides where it prints.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L5_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: |m, s, l| ident_boundary(m, s, l - 1), // exclude the `!`
            })
            .collect();
        ctx.scan(
            &scans,
            "L5",
            &|t| {
                format!(
                    "console output `{t}` in library code: record through \
                     sinr_obs::Recorder and let the binary choose a sink \
                     (sanctioned sinks live in crates/obs/src/sink.rs)"
                )
            },
            &mut out,
        );
    }

    // L6 — no threading primitives outside the deterministic worker pool.
    // `std::thread::spawn` would race results nondeterministically and
    // `std::sync` channels/locks invite merge orders that depend on
    // scheduling; `sinr_pool::Pool` is the audited home for both.
    if !is_test_path(path) && !path.starts_with(THREADING_HOME) {
        let scans: Vec<TokenScan> = L6_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        let mut hits = Vec::new();
        ctx.scan(
            &scans,
            "L6",
            &|t| {
                format!(
                    "threading primitive `{t}` outside crates/pool: run parallel \
                     work through sinr_pool::Pool (static partitioning, \
                     deterministic merges) so outputs stay bit-identical for \
                     every thread count"
                )
            },
            &mut hits,
        );
        // `std::thread::spawn` matches two tokens at one site; report once.
        hits.dedup_by(|a, b| a.line == b.line);
        out.append(&mut hits);
    }

    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/mac/src/fake.rs";

    fn lints_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_file(path, src)
            .into_iter()
            .map(|v| (v.lint, v.line))
            .collect()
    }

    #[test]
    fn l1_catches_thread_rng_in_production_code() {
        let hits = lints_of(
            "crates/cli/src/fake.rs",
            "let mut r = rand::thread_rng();\n",
        );
        assert_eq!(hits, vec![("L1", 1)]);
    }

    #[test]
    fn l1_ignores_test_modules_and_strings_and_comments() {
        let src = "\
// thread_rng is banned\n\
fn f() { let s = \"thread_rng\"; }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = fake::thread_rng(); }\n\
}\n";
        assert!(lints_of("crates/cli/src/fake.rs", src).is_empty());
    }

    #[test]
    fn l1_requires_word_boundary() {
        let hits = lints_of("src/fake.rs", "fn my_thread_rng_helper() {}\n");
        assert!(hits.is_empty());
    }

    #[test]
    fn l2_catches_unwrap_expect_and_panics_in_lib_code() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|&(l, _)| l == "L2"));
    }

    #[test]
    fn l2_skips_test_code_and_non_lib_crates() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        assert!(lints_of(LIB, src).is_empty());
        // CLI and bench crates may panic (they surface errors elsewhere).
        assert!(lints_of("crates/cli/src/fake.rs", "fn f() { x.unwrap(); }").is_empty());
        // Lib crates' integration tests may panic too.
        assert!(lints_of("crates/mac/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn l2_does_not_confuse_unwrap_or() {
        assert!(lints_of(LIB, "let v = x.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn l3_flags_magic_constants_outside_homes() {
        let hits = lints_of(LIB, "let r = 96.0 * rho; let d = (32.0_f64).sqrt();\n");
        // Both the bare literal and the `_f64`-suffixed form are flagged.
        assert_eq!(hits, vec![("L3", 1), ("L3", 1)], "{hits:?}");
    }

    #[test]
    fn l3_allows_the_audited_homes_and_unrelated_numbers() {
        assert!(lints_of("crates/sinr/src/config.rs", "let x = 96.0 * 32.0;").is_empty());
        assert!(lints_of("crates/core/src/params.rs", "let x = 32.0;").is_empty());
        assert!(lints_of(LIB, "let x = 132.0 + 96.05 + 0.32;\n").is_empty());
    }

    #[test]
    fn l4_flags_narrowing_casts_in_lib_code_only() {
        let hits = lints_of(LIB, "let small = node_id as u32;\n");
        assert_eq!(hits, vec![("L4", 1)]);
        assert!(lints_of("crates/bench/src/fake.rs", "let s = x as u32;").is_empty());
        assert!(lints_of(LIB, "let wide = v as u64; let f = v as f64;").is_empty());
    }

    #[test]
    fn l5_flags_console_output_in_lib_code() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); }\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|&(l, _)| l == "L5"));
        // The obs crate itself is a library crate: its non-sink modules
        // must not print either.
        let hits = lints_of(
            "crates/obs/src/metrics.rs",
            "fn f() { eprintln!(\"x\"); }\n",
        );
        assert_eq!(hits, vec![("L5", 1)]);
    }

    #[test]
    fn l5_skips_binaries_tests_and_lookalikes() {
        // CLI/bench binaries own their stdout; tests may print freely.
        assert!(lints_of("crates/cli/src/fake.rs", "println!(\"x\");").is_empty());
        assert!(lints_of("crates/mac/tests/t.rs", "println!(\"x\");").is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }\n";
        assert!(lints_of(LIB, src).is_empty());
        // `println!` inside strings/comments is masked; a user-defined
        // `my_println!` macro has no word boundary.
        assert!(lints_of(LIB, "// println! is banned\nlet s = \"println!\";\n").is_empty());
        assert!(lints_of(LIB, "my_println!(x);\n").is_empty());
        // Each macro matches exactly once: eprintln! is not also println!.
        assert_eq!(lints_of(LIB, "eprintln!(\"x\");\n").len(), 1);
    }

    #[test]
    fn l6_flags_threading_outside_the_pool_crate() {
        // One violation per site even when two tokens overlap.
        let hits = lints_of(LIB, "std::thread::spawn(|| {});\n");
        assert_eq!(hits, vec![("L6", 1)]);
        // Bare `thread::scope` after a `use` still trips.
        let hits = lints_of("crates/bench/src/fake.rs", "thread::scope(|s| {});\n");
        assert_eq!(hits, vec![("L6", 1)]);
        let hits = lints_of("crates/obs/src/fake.rs", "use std::sync::Mutex;\n");
        assert_eq!(hits, vec![("L6", 1)]);
    }

    #[test]
    fn l6_allows_the_pool_crate_tests_and_lookalikes() {
        assert!(lints_of("crates/pool/src/lib.rs", "use std::sync::Mutex;\n").is_empty());
        assert!(lints_of("crates/mac/tests/t.rs", "use std::thread;\n").is_empty());
        let src = "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicU64; }\n";
        assert!(lints_of(LIB, src).is_empty());
        // Identifiers that merely contain the token don't trip.
        assert!(lints_of(LIB, "fn my_thread::spawner() {}\n").is_empty());
        assert!(lints_of(LIB, "let s = \"std::thread\"; // std::sync\n").is_empty());
    }

    #[test]
    fn violations_carry_line_numbers_and_snippets() {
        let src = "fn ok() {}\nfn bad() {\n    q.unwrap();\n}\n";
        let v = lint_file(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].snippet, "q.unwrap();");
        assert!(v[0].message.contains("Result"));
    }
}
