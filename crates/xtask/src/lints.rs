//! The repo-specific lints L1–L10 (see `docs/LINTING.md`).
//!
//! All lints operate on *masked* source (comments and literal contents
//! blanked — see [`crate::lexer`]) so tokens inside strings and docs never
//! trigger, and honor `#[cfg(test)]` regions. L8 additionally consumes the
//! item tree ([`crate::lexer::item_tree`]) so findings attach to the
//! `// lint:hot`-marked item whose body they fall in.

use crate::lexer::{col_of, find_test_regions, item_tree, line_of, mask_non_code, TestRegion};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Lint identifier: `"L1"` … `"L10"`.
    pub lint: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token within its line.
    pub col: usize,
    /// What was found and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The library crates whose non-test code must be panic-free (L2), free
/// of lossy id/slot casts (L4), and console-silent (L5).
pub const LIB_CRATES: [&str; 7] = [
    "crates/geometry/",
    "crates/sinr/",
    "crates/radiosim/",
    "crates/core/",
    "crates/mac/",
    "crates/obs/",
    "crates/pool/",
];

/// Files allowed to spell out paper constants (L3): the audited definitions.
pub const CONSTANT_HOMES: [&str; 2] = ["crates/sinr/src/config.rs", "crates/core/src/params.rs"];

/// Entropy-based RNG constructors banned outside `#[cfg(test)]` (L1).
const L1_TOKENS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "ThreadRng",
    "OsRng",
];

/// Panicking constructs banned in library non-test code (L2).
const L2_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Paper-formula magic values (L3): the `96` of `R_I`, the `32` of the
/// Theorem-3 guard distance `d`, and the `16` of the Theorem-3 proof's
/// interference bound. Only their audited homes may spell these out.
const L3_TOKENS: [&str; 3] = ["96.0", "32.0", "16.0"];

/// Narrowing integer casts (L4): node ids are `usize` and slot counters
/// `u64` throughout; casting them to anything smaller silently truncates.
const L4_TOKENS: [&str; 6] = ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

/// Console-output macros banned in library non-test code (L5): libraries
/// record through `sinr_obs::Recorder`; only the sanctioned sinks in
/// `crates/obs/src/sink.rs` (allowlisted) may print.
const L5_TOKENS: [&str; 5] = ["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// Threading primitives banned outside `crates/pool` (L6): every thread
/// and every synchronization primitive in the workspace flows through
/// the deterministic worker pool, so outputs stay bit-identical for any
/// thread count and there is exactly one place to audit for ordering.
const L6_TOKENS: [&str; 4] = ["std::thread", "std::sync", "thread::spawn", "thread::scope"];

/// The one crate allowed to touch threading primitives directly (L6).
pub const THREADING_HOME: &str = "crates/pool/";

/// Entropy-keyed std hash collections banned in library non-test code (L7):
/// `RandomState` draws a per-process key, so iteration order differs
/// between runs — `sinr_rng::DetHashMap`/`DetHashSet` (fixed-key hasher)
/// or `BTreeMap` are the deterministic replacements.
const L7_TOKENS: [&str; 2] = ["HashMap", "HashSet"];

/// Allocating / formatting constructs banned inside `// lint:hot` items
/// (L8): the slot engine's inner loops must be allocation-free.
const L8_TOKENS: [&str; 9] = [
    "Vec::new",
    "vec![",
    "Box::new",
    "format!",
    "String::from",
    ".to_vec()",
    ".collect(",
    ".collect::<",
    ".clone()",
];

/// Float→integer cast targets audited by L9.
const L9_CASTS: [&str; 3] = ["as usize", "as u64", "as i64"];

/// The audited home for checked float→int conversions: the one file that
/// may spell out `expr as i64` etc. on float expressions (exempt from L9).
pub const CAST_HOME: &str = "crates/geometry/src/cast.rs";

/// Allocator hooks banned in library crates (L10): installing a
/// `#[global_allocator]` in a library forces it on every downstream
/// binary, and direct `std::alloc` calls bypass the counting wrapper's
/// per-phase attribution.
const L10_TOKENS: [&str; 2] = ["global_allocator", "std::alloc"];

/// The one library file allowed to touch `std::alloc` directly (L10):
/// the counting allocator implementation itself.
pub const ALLOC_HOME: &str = "crates/obs/src/alloc.rs";

/// Methods whose receiver/result is evidently floating-point; a cast of
/// `x.method() as usize` with one of these is an L9 finding.
const FLOAT_METHODS: [&str; 22] = [
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "sqrt",
    "cbrt",
    "ln",
    "ln_1p",
    "log",
    "log2",
    "log10",
    "exp",
    "exp2",
    "exp_m1",
    "powf",
    "powi",
    "hypot",
    "mul_add",
    "recip",
    "to_degrees",
    "to_radians",
];

/// Whether `path` (workspace-relative, forward slashes) is test-only code:
/// integration tests, benches, or proptest suites.
fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

fn in_lib_crate(path: &str) -> bool {
    LIB_CRATES
        .iter()
        .any(|c| path.starts_with(c) && path[c.len()..].starts_with("src/"))
}

fn is_constant_home(path: &str) -> bool {
    CONSTANT_HOMES.contains(&path)
}

/// A word boundary for identifier-like tokens: the neighbor byte must not
/// continue an identifier.
fn ident_boundary(masked: &str, start: usize, len: usize) -> bool {
    let b = masked.as_bytes();
    let before_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
    let end = start + len;
    let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
    before_ok && after_ok
}

/// A numeric boundary: the token must not be part of a longer number
/// (`132.0`, `96.05`), but float suffixes (`32.0f64`, `32.0_f64`) still
/// count as the constant.
fn numeric_boundary(masked: &str, start: usize, len: usize) -> bool {
    let b = masked.as_bytes();
    let before_ok = start == 0
        || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_' || b[start - 1] == b'.');
    let rest = &b[start + len..];
    let after_ok = match rest.first() {
        None => true,
        Some(c) if c.is_ascii_digit() => false,
        Some(&c) if c == b'_' || c == b'f' => {
            let r = if c == b'_' { &rest[1..] } else { rest };
            (r.starts_with(b"f64") || r.starts_with(b"f32"))
                && (r.len() == 3 || !(r[3].is_ascii_alphanumeric() || r[3] == b'_'))
        }
        Some(_) => true,
    };
    before_ok && after_ok
}

/// Index of the last non-whitespace byte strictly before `i`.
fn prev_non_ws(b: &[u8], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !b[j].is_ascii_whitespace())
}

/// The `(` matching the `)` at `close` (paren contents in masked source
/// contain no string/comment parens, so plain counting is exact).
fn matching_open_paren(b: &[u8], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        match b[j] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// The identifier (or number token) ending strictly before `end`, with its
/// start offset. Empty if the preceding byte is not an identifier byte.
fn token_before(masked: &str, end: usize) -> (usize, &str) {
    let b = masked.as_bytes();
    let mut start = end;
    while start > 0 && (b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_') {
        start -= 1;
    }
    (start, &masked[start..end])
}

/// Whether a numeric token is a float literal: `1.5`, `2.`, `1e9`,
/// `2.5_f64`, `3f32` — but not hex/binary/octal, plain ints, or range
/// expressions the dotted walk-back may have swallowed (`0..n`).
fn is_float_literal(tok: &str) -> bool {
    let b = tok.as_bytes();
    if b.first().is_none_or(|c| !c.is_ascii_digit()) {
        return false;
    }
    if tok.starts_with("0x") || tok.starts_with("0b") || tok.starts_with("0o") {
        return false;
    }
    let suffixed = tok.ends_with("f64") || tok.ends_with("f32");
    let body = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map(|t| t.strip_suffix('_').unwrap_or(t))
        .unwrap_or(tok);
    // After peeling the suffix, a float literal is digits plus at most a
    // dot and an exponent; any other letter means this was a path/range
    // (`0..n`, `t.0n`) and not a number at all.
    if !body
        .bytes()
        .all(|c| c.is_ascii_digit() || matches!(c, b'.' | b'_' | b'e' | b'E' | b'+' | b'-'))
        || body.contains("..")
    {
        return false;
    }
    let dotted = body.contains('.');
    let exponent = body.as_bytes().iter().enumerate().any(|(i, &c)| {
        (c == b'e' || c == b'E')
            && i > 0
            && body
                .as_bytes()
                .get(i + 1)
                .is_some_and(|n| n.is_ascii_digit())
    });
    suffixed || dotted || exponent
}

/// Whether a masked paren-group's text gives away a float expression:
/// a float literal, a float-method call, or an `as f64`/`as f32` cast.
fn contains_float_hint(group: &str) -> bool {
    let b = group.as_bytes();
    // `1.5`-style literal: digit '.' digit (ranges `0..9` have two dots,
    // tuple fields `t.0` have no digit before the dot).
    for i in 1..b.len().saturating_sub(1) {
        if b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit() {
            // Not part of a `..` range on either side.
            if b.get(i + 1) != Some(&b'.') && b[i - 1] != b'.' {
                return true;
            }
        }
    }
    for cast in ["as f64", "as f32"] {
        let mut from = 0;
        while let Some(rel) = group[from..].find(cast) {
            let at = from + rel;
            from = at + 1;
            if ident_boundary(group, at, cast.len()) {
                return true;
            }
        }
    }
    FLOAT_METHODS
        .iter()
        .any(|m| group.contains(&format!(".{m}(")))
}

/// Whether the expression ending just before `at` (the start of an
/// `as <int>` cast) is evidently floating-point (L9's heuristic).
fn float_expr_before(masked: &str, at: usize) -> bool {
    let b = masked.as_bytes();
    let Some(p) = prev_non_ws(b, at) else {
        return false;
    };
    if b[p] == b')' {
        let Some(open) = matching_open_paren(b, p) else {
            return false;
        };
        // Method call `recv.method(...)`: float-returning method ⇒ float.
        let (name_start, name) = token_before(masked, open);
        if !name.is_empty()
            && name_start > 0
            && b[name_start - 1] == b'.'
            && FLOAT_METHODS.contains(&name)
        {
            return true;
        }
        return contains_float_hint(&masked[open + 1..p]);
    }
    // Walk back over a number-or-path token, dots included, so `2.5`
    // comes out whole (while `t.0` / `self.cell` start with a non-digit
    // and classify as non-float).
    let mut start = p + 1;
    while start > 0 && {
        let c = b[start - 1];
        c.is_ascii_alphanumeric() || c == b'_' || c == b'.'
    } {
        start -= 1;
    }
    let tok = &masked[start..p + 1];
    if tok == "f64" || tok == "f32" {
        // `x as f64 as usize`: the thing being cast is itself a float cast.
        if let Some(q) = prev_non_ws(b, start) {
            let (_, prev) = token_before(masked, q + 1);
            return prev == "as";
        }
        return false;
    }
    is_float_literal(tok)
}

/// Whether the expression ending just before `at` visibly involves
/// subtraction or negation (the L4 `as u64`-on-signed heuristic):
/// a preceding paren group with a top-level `-`, or a negated literal.
fn signed_expr_before(masked: &str, at: usize) -> bool {
    let b = masked.as_bytes();
    let Some(p) = prev_non_ws(b, at) else {
        return false;
    };
    if b[p] == b')' {
        let Some(open) = matching_open_paren(b, p) else {
            return false;
        };
        return group_has_top_level_minus(&masked[open + 1..p]);
    }
    // `-5 as u64`: a literal with a unary minus directly applied.
    let (start, tok) = token_before(masked, p + 1);
    if tok.is_empty() || !tok.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let Some(m) = prev_non_ws(b, start) else {
        return false;
    };
    if b[m] != b'-' {
        return false;
    }
    // Unary, not binary: `a - 5 as u64` casts only `5` (binary minus on
    // the *outer* expression), so require an operator/opening before `-`.
    match prev_non_ws(b, m) {
        None => true,
        Some(o) => matches!(
            b[o],
            b'(' | b'['
                | b'{'
                | b','
                | b'='
                | b'+'
                | b'-'
                | b'*'
                | b'/'
                | b'%'
                | b'<'
                | b'>'
                | b'&'
                | b'|'
                | b'^'
                | b';'
                | b':'
        ),
    }
}

/// Whether `group` (masked paren contents) contains a `-` at paren/bracket
/// depth 0 that is neither an `->` arrow nor a float-exponent sign.
fn group_has_top_level_minus(group: &str) -> bool {
    let b = group.as_bytes();
    let mut depth = 0i32;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'-' if depth == 0 => {
                let arrow = b.get(i + 1) == Some(&b'>');
                let exponent =
                    i >= 2 && (b[i - 1] == b'e' || b[i - 1] == b'E') && b[i - 2].is_ascii_digit();
                if !arrow && !exponent {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

fn line_text(src: &str, line: usize) -> String {
    src.lines().nth(line - 1).unwrap_or("").trim().to_string()
}

fn in_test_region(regions: &[TestRegion], line: usize) -> bool {
    regions
        .iter()
        .any(|r| (r.start_line..=r.end_line).contains(&line))
}

struct TokenScan<'a> {
    token: &'a str,
    boundary: fn(&str, usize, usize) -> bool,
}

/// One file's scan state: the original source, its masked form, and the
/// `#[cfg(test)]` regions (always exempt from every lint).
struct FileCtx<'a> {
    path: &'a str,
    src: &'a str,
    masked: String,
    regions: Vec<TestRegion>,
}

impl FileCtx<'_> {
    fn scan(
        &self,
        scans: &[TokenScan<'_>],
        lint: &'static str,
        message: &dyn Fn(&str) -> String,
        out: &mut Vec<Violation>,
    ) {
        for s in scans {
            let mut from = 0usize;
            while let Some(rel) = self.masked[from..].find(s.token) {
                let at = from + rel;
                from = at + 1;
                if !(s.boundary)(&self.masked, at, s.token.len()) {
                    continue;
                }
                let line = line_of(&self.masked, at);
                if in_test_region(&self.regions, line) {
                    continue;
                }
                out.push(Violation {
                    lint,
                    file: self.path.to_string(),
                    line,
                    col: col_of(&self.masked, at),
                    message: message(s.token),
                    snippet: line_text(self.src, line),
                });
            }
        }
    }

    /// Scans `as <ty>` cast tokens and reports the sites `classify`
    /// accepts (returning the finding message). Used by L9 and the L4
    /// signedness extension, whose verdicts depend on the expression
    /// *preceding* the token, not the token alone.
    fn scan_casts(
        &self,
        lint: &'static str,
        tokens: &[&str],
        classify: &dyn Fn(&str, usize, &str) -> Option<String>,
        out: &mut Vec<Violation>,
    ) {
        for &token in tokens {
            let mut from = 0usize;
            while let Some(rel) = self.masked[from..].find(token) {
                let at = from + rel;
                from = at + 1;
                if !ident_boundary(&self.masked, at, token.len()) {
                    continue;
                }
                let line = line_of(&self.masked, at);
                if in_test_region(&self.regions, line) {
                    continue;
                }
                let Some(message) = classify(&self.masked, at, token) else {
                    continue;
                };
                out.push(Violation {
                    lint,
                    file: self.path.to_string(),
                    line,
                    col: col_of(&self.masked, at),
                    message,
                    snippet: line_text(self.src, line),
                });
            }
        }
    }
}

/// Runs every applicable lint over one file. `path` must be
/// workspace-relative with forward slashes.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let masked = mask_non_code(src);
    let regions = find_test_regions(&masked);
    let ctx = FileCtx {
        path,
        src,
        masked,
        regions,
    };
    let mut out = Vec::new();

    // L1 — no unseeded RNG anywhere outside test code. Applies to every
    // production file in the workspace: determinism is load-bearing
    // (tests/determinism.rs; experiment results cite seeds).
    if !is_test_path(path) {
        let scans: Vec<TokenScan> = L1_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L1",
            &|t| {
                format!(
                    "unseeded RNG source `{t}`: construct generators only via \
                     sinr_rng::SeedableRng::seed_from_u64 so runs are reproducible"
                )
            },
            &mut out,
        );
    }

    // L2 — no panicking constructs in library non-test code.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L2_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: |m, s, l| {
                    // `.unwrap()` / `.expect(` start with '.', macros need
                    // an identifier boundary on the left only.
                    let b = m.as_bytes();
                    if b[s] == b'.' {
                        true
                    } else {
                        ident_boundary(m, s, l - 1) // exclude the trailing `!`/`(`
                    }
                },
            })
            .collect();
        ctx.scan(
            &scans,
            "L2",
            &|t| {
                format!(
                    "panicking construct `{t}` in library code: return a Result \
                     through the crate's error type, or document the invariant and \
                     allowlist it in xtask-lint.toml"
                )
            },
            &mut out,
        );
    }

    // L3 — paper-formula constants only in their audited homes.
    if !is_test_path(path) && !is_constant_home(path) {
        let scans: Vec<TokenScan> = L3_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: numeric_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L3",
            &|t| {
                format!(
                    "paper constant `{t}` outside its audited home: derive it from \
                     sinr_model::SinrConfig (crates/sinr/src/config.rs) or \
                     MwParams (crates/core/src/params.rs) instead of restating it"
                )
            },
            &mut out,
        );
    }

    // L4 — no narrowing casts on ids/slot counters in library code.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L4_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L4",
            &|t| {
                format!(
                    "narrowing cast `{t}`: node ids are usize and slot counters \
                     u64; use TryFrom/try_into with explicit error handling"
                )
            },
            &mut out,
        );
    }

    // L4 (signedness extension) — `as i64` anywhere (slot counters are u64
    // and wrap above 2^63) and `as u64` on visibly signed expressions (a
    // subtraction or negation feeding the cast wraps negatives to huge
    // values). Float-valued sites belong to L9, which reports them with the
    // right fix; they are excluded here so one site gets one finding.
    if in_lib_crate(path) && path != CAST_HOME {
        ctx.scan_casts(
            "L4",
            &["as i64", "as u64"],
            &|masked, at, token| {
                if float_expr_before(masked, at) {
                    return None;
                }
                match token {
                    "as i64" => Some(
                        "sign-converting cast `as i64`: slot counters are u64 and \
                         wrap above 2^63; use i64::try_from(..) with explicit \
                         overflow handling (e.g. .unwrap_or(i64::MAX))"
                            .to_string(),
                    ),
                    _ if signed_expr_before(masked, at) => Some(
                        "sign-discarding cast `as u64` on an expression with \
                         subtraction/negation: negatives wrap to huge values; \
                         compute in i64/f64 and convert with a checked helper"
                            .to_string(),
                    ),
                    _ => None,
                }
            },
            &mut out,
        );
    }

    // L5 — no console output in library code: everything observable goes
    // through a Recorder; the binary (CLI, bench) decides where it prints.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L5_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: |m, s, l| ident_boundary(m, s, l - 1), // exclude the `!`
            })
            .collect();
        ctx.scan(
            &scans,
            "L5",
            &|t| {
                format!(
                    "console output `{t}` in library code: record through \
                     sinr_obs::Recorder and let the binary choose a sink \
                     (sanctioned sinks live in crates/obs/src/sink.rs)"
                )
            },
            &mut out,
        );
    }

    // L6 — no threading primitives outside the deterministic worker pool.
    // `std::thread::spawn` would race results nondeterministically and
    // `std::sync` channels/locks invite merge orders that depend on
    // scheduling; `sinr_pool::Pool` is the audited home for both.
    if !is_test_path(path) && !path.starts_with(THREADING_HOME) {
        let scans: Vec<TokenScan> = L6_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        let mut hits = Vec::new();
        ctx.scan(
            &scans,
            "L6",
            &|t| {
                format!(
                    "threading primitive `{t}` outside crates/pool: run parallel \
                     work through sinr_pool::Pool (static partitioning, \
                     deterministic merges) so outputs stay bit-identical for \
                     every thread count"
                )
            },
            &mut hits,
        );
        // `std::thread::spawn` matches two tokens at one site; report once.
        hits.dedup_by(|a, b| a.line == b.line);
        out.append(&mut hits);
    }

    // L7 — no entropy-keyed hash collections in library non-test code:
    // `RandomState` seeds per process, so iteration order differs between
    // runs and silently breaks seed-cited reproducibility.
    if in_lib_crate(path) {
        let scans: Vec<TokenScan> = L7_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L7",
            &|t| {
                format!(
                    "entropy-keyed `{t}`: std's RandomState makes iteration \
                     order differ between runs; use sinr_rng::Det{t} \
                     (fixed-key hasher, same API) or a BTree collection \
                     when visit order matters"
                )
            },
            &mut out,
        );
    }

    // L8 — `// lint:hot` items must not allocate or format. Findings are
    // attached to the enclosing marked item via the item tree; applies
    // everywhere outside test code (markers declare intent, not crate).
    if !is_test_path(path) && src.contains("lint:hot") {
        let items = item_tree(src, &ctx.masked);
        for item in items.iter().filter(|i| i.hot) {
            let Some((open, close)) = item.body else {
                continue;
            };
            for &token in &L8_TOKENS {
                let mut from = open;
                while let Some(rel) = ctx.masked[from..close].find(token) {
                    let at = from + rel;
                    from = at + 1;
                    if !l8_boundary(&ctx.masked, at, token) {
                        continue;
                    }
                    let line = line_of(&ctx.masked, at);
                    if in_test_region(&ctx.regions, line) {
                        continue;
                    }
                    out.push(Violation {
                        lint: "L8",
                        file: path.to_string(),
                        line,
                        col: col_of(&ctx.masked, at),
                        message: format!(
                            "allocation in hot item `{}`: `{token}` allocates or \
                             formats inside a `// lint:hot` region; preallocate \
                             scratch buffers outside the loop (ChunkScratch-style) \
                             or hoist the work to a cold path",
                            item.name
                        ),
                        snippet: line_text(src, line),
                    });
                }
            }
        }
        // A hot impl block containing a hot fn would double-report; the
        // final sort+dedup below collapses identical (lint, line, col).

        // L11 — `// lint:hot` items must use static dispatch. The scan
        // covers item *bodies* only, so trait-object parameters in the
        // signature (e.g. `rec: &mut dyn Recorder`) stay legal: the cost
        // being banned is a fresh `dyn` coercion — an indirect call per
        // node per slot that also blocks inlining — not receiving an
        // already-erased reference from a cold caller.
        for item in items.iter().filter(|i| i.hot) {
            let Some((open, close)) = item.body else {
                continue;
            };
            let mut from = open;
            while let Some(rel) = ctx.masked[from..close].find("dyn") {
                let at = from + rel;
                from = at + 1;
                if !ident_boundary(&ctx.masked, at, 3) {
                    continue;
                }
                let line = line_of(&ctx.masked, at);
                if in_test_region(&ctx.regions, line) {
                    continue;
                }
                out.push(Violation {
                    lint: "L11",
                    file: path.to_string(),
                    line,
                    col: col_of(&ctx.masked, at),
                    message: format!(
                        "dynamic dispatch in hot item `{}`: a `dyn` coercion \
                         inside a `// lint:hot` region turns a per-slot inner \
                         loop into indirect calls the compiler cannot inline; \
                         make the callee generic over the trait (static \
                         dispatch, monomorphized per caller) or hoist the \
                         type-erased call to a cold path",
                        item.name
                    ),
                    snippet: line_text(src, line),
                });
            }
        }
    }

    // L9 — float→int casts route through the audited checked helpers in
    // crates/geometry/src/cast.rs: a bare `as` saturates silently (NaN→0,
    // 1e300→MAX) which is indistinguishable from correct rounding.
    if in_lib_crate(path) && path != CAST_HOME {
        ctx.scan_casts(
            "L9",
            &L9_CASTS,
            &|masked, at, token| {
                if !float_expr_before(masked, at) {
                    return None;
                }
                let target = &token[3..];
                Some(format!(
                    "unchecked float→int cast `{token}`: saturates silently \
                     (NaN→0, out-of-range→MAX); use \
                     sinr_geometry::cast::floor_{target}/ceil_{target} (debug-asserted, \
                     documented saturation) instead"
                ))
            },
            &mut out,
        );
    }

    // L10 — allocator hooks only in binaries: a library-side
    // `#[global_allocator]` would force the counting allocator on every
    // downstream binary, and direct `std::alloc` use bypasses the
    // per-phase attribution that makes the heap ledger trustworthy. The
    // allocator implementation itself (ALLOC_HOME) is the one exemption.
    if in_lib_crate(path) && path != ALLOC_HOME {
        let scans: Vec<TokenScan> = L10_TOKENS
            .iter()
            .map(|&token| TokenScan {
                token,
                boundary: ident_boundary,
            })
            .collect();
        ctx.scan(
            &scans,
            "L10",
            &|t| {
                format!(
                    "allocator hook `{t}` in library code: install \
                     sinr_obs::alloc::CountingAlloc only in a binary or bench \
                     target, and observe the heap through its \
                     snapshot()/AllocScope API (the allocator implementation \
                     lives solely in crates/obs/src/alloc.rs)"
                )
            },
            &mut out,
        );
    }

    out.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    out.dedup_by(|a, b| (a.lint, a.line, a.col) == (b.lint, b.line, b.col));
    out
}

/// L8 token boundary: dot-prefixed method tokens are self-delimiting;
/// the rest need an identifier boundary on their leading path/name (the
/// trailing `!`/`[`/`(` already breaks the right edge).
fn l8_boundary(masked: &str, at: usize, token: &str) -> bool {
    if token.starts_with('.') {
        return true;
    }
    let prefix = token.trim_end_matches(['!', '[', '(', '<', ':']);
    ident_boundary(masked, at, prefix.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/mac/src/fake.rs";

    fn lints_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_file(path, src)
            .into_iter()
            .map(|v| (v.lint, v.line))
            .collect()
    }

    #[test]
    fn l1_catches_thread_rng_in_production_code() {
        let hits = lints_of(
            "crates/cli/src/fake.rs",
            "let mut r = rand::thread_rng();\n",
        );
        assert_eq!(hits, vec![("L1", 1)]);
    }

    #[test]
    fn l1_ignores_test_modules_and_strings_and_comments() {
        let src = "\
// thread_rng is banned\n\
fn f() { let s = \"thread_rng\"; }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = fake::thread_rng(); }\n\
}\n";
        assert!(lints_of("crates/cli/src/fake.rs", src).is_empty());
    }

    #[test]
    fn l1_requires_word_boundary() {
        let hits = lints_of("src/fake.rs", "fn my_thread_rng_helper() {}\n");
        assert!(hits.is_empty());
    }

    #[test]
    fn l2_catches_unwrap_expect_and_panics_in_lib_code() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|&(l, _)| l == "L2"));
    }

    #[test]
    fn l2_skips_test_code_and_non_lib_crates() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        assert!(lints_of(LIB, src).is_empty());
        // CLI and bench crates may panic (they surface errors elsewhere).
        assert!(lints_of("crates/cli/src/fake.rs", "fn f() { x.unwrap(); }").is_empty());
        // Lib crates' integration tests may panic too.
        assert!(lints_of("crates/mac/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn l2_does_not_confuse_unwrap_or() {
        assert!(lints_of(LIB, "let v = x.unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn l3_flags_magic_constants_outside_homes() {
        let hits = lints_of(LIB, "let r = 96.0 * rho; let d = (32.0_f64).sqrt();\n");
        // Both the bare literal and the `_f64`-suffixed form are flagged.
        assert_eq!(hits, vec![("L3", 1), ("L3", 1)], "{hits:?}");
    }

    #[test]
    fn l3_allows_the_audited_homes_and_unrelated_numbers() {
        assert!(lints_of("crates/sinr/src/config.rs", "let x = 96.0 * 32.0;").is_empty());
        assert!(lints_of("crates/core/src/params.rs", "let x = 32.0;").is_empty());
        assert!(lints_of(LIB, "let x = 132.0 + 96.05 + 0.32;\n").is_empty());
    }

    #[test]
    fn l4_flags_narrowing_casts_in_lib_code_only() {
        let hits = lints_of(LIB, "let small = node_id as u32;\n");
        assert_eq!(hits, vec![("L4", 1)]);
        assert!(lints_of("crates/bench/src/fake.rs", "let s = x as u32;").is_empty());
        assert!(lints_of(LIB, "let wide = v as u64; let f = v as f64;").is_empty());
    }

    #[test]
    fn l5_flags_console_output_in_lib_code() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); }\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|&(l, _)| l == "L5"));
        // The obs crate itself is a library crate: its non-sink modules
        // must not print either.
        let hits = lints_of(
            "crates/obs/src/metrics.rs",
            "fn f() { eprintln!(\"x\"); }\n",
        );
        assert_eq!(hits, vec![("L5", 1)]);
    }

    #[test]
    fn l5_skips_binaries_tests_and_lookalikes() {
        // CLI/bench binaries own their stdout; tests may print freely.
        assert!(lints_of("crates/cli/src/fake.rs", "println!(\"x\");").is_empty());
        assert!(lints_of("crates/mac/tests/t.rs", "println!(\"x\");").is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { println!(\"x\"); } }\n";
        assert!(lints_of(LIB, src).is_empty());
        // `println!` inside strings/comments is masked; a user-defined
        // `my_println!` macro has no word boundary.
        assert!(lints_of(LIB, "// println! is banned\nlet s = \"println!\";\n").is_empty());
        assert!(lints_of(LIB, "my_println!(x);\n").is_empty());
        // Each macro matches exactly once: eprintln! is not also println!.
        assert_eq!(lints_of(LIB, "eprintln!(\"x\");\n").len(), 1);
    }

    #[test]
    fn l6_flags_threading_outside_the_pool_crate() {
        // One violation per site even when two tokens overlap.
        let hits = lints_of(LIB, "std::thread::spawn(|| {});\n");
        assert_eq!(hits, vec![("L6", 1)]);
        // Bare `thread::scope` after a `use` still trips.
        let hits = lints_of("crates/bench/src/fake.rs", "thread::scope(|s| {});\n");
        assert_eq!(hits, vec![("L6", 1)]);
        let hits = lints_of("crates/obs/src/fake.rs", "use std::sync::Mutex;\n");
        assert_eq!(hits, vec![("L6", 1)]);
    }

    #[test]
    fn l6_allows_the_pool_crate_tests_and_lookalikes() {
        assert!(lints_of("crates/pool/src/lib.rs", "use std::sync::Mutex;\n").is_empty());
        assert!(lints_of("crates/mac/tests/t.rs", "use std::thread;\n").is_empty());
        let src = "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicU64; }\n";
        assert!(lints_of(LIB, src).is_empty());
        // Identifiers that merely contain the token don't trip.
        assert!(lints_of(LIB, "fn my_thread::spawner() {}\n").is_empty());
        assert!(lints_of(LIB, "let s = \"std::thread\"; // std::sync\n").is_empty());
    }

    #[test]
    fn violations_carry_line_numbers_and_snippets() {
        let src = "fn ok() {}\nfn bad() {\n    q.unwrap();\n}\n";
        let v = lint_file(LIB, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert_eq!(v[0].snippet, "q.unwrap();");
        assert!(v[0].message.contains("Result"));
    }

    #[test]
    fn violations_carry_columns() {
        let src = "fn bad() {\n    let id = q.unwrap();\n}\n";
        let v = lint_file(LIB, src);
        assert_eq!(v.len(), 1);
        // `.unwrap()` starts at the `.`: 4 spaces + "let id = q" = col 15.
        assert_eq!((v[0].line, v[0].col), (2, 15));
    }

    #[test]
    fn l7_flags_std_hash_collections_in_lib_code() {
        let src = "use std::collections::HashMap;\nfn f(s: HashSet<u8>) {}\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits, vec![("L7", 1), ("L7", 2)]);
    }

    #[test]
    fn l7_allows_det_variants_tests_and_non_lib_crates() {
        assert!(lints_of(
            LIB,
            "use sinr_rng::DetHashMap;\nlet m = DetHashSet::default();\n"
        )
        .is_empty());
        // The rng crate itself wraps std's HashMap — it is not a LIB_CRATE.
        assert!(lints_of("crates/rng/src/det.rs", "use std::collections::HashMap;\n").is_empty());
        assert!(lints_of("crates/mac/tests/t.rs", "use std::collections::HashMap;\n").is_empty());
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        assert!(lints_of(LIB, src).is_empty());
    }

    #[test]
    fn l8_flags_allocation_in_hot_items_only() {
        let src = "\
// lint:hot\n\
fn hot(xs: &[u64]) -> u64 {\n\
    let v = Vec::new();\n\
    let w: Vec<u64> = xs.iter().copied().collect();\n\
    w.len() as u64\n\
}\n\
fn cold() {\n\
    let v = vec![1, 2, 3];\n\
    let s = format!(\"x\");\n\
}\n";
        let hits = lints_of(LIB, src);
        assert_eq!(hits, vec![("L8", 3), ("L8", 4)], "{hits:?}");
    }

    #[test]
    fn l8_catches_each_banned_construct() {
        for bad in [
            "let v = Vec::new();",
            "let v = vec![0u8; 8];",
            "let b = Box::new(1);",
            "let s = format!(\"{x}\");",
            "let s = String::from(\"x\");",
            "let v = xs.to_vec();",
            "let v = it.collect::<Vec<_>>();",
            "let c = msg.clone();",
        ] {
            let src = format!("// lint:hot\nfn hot() {{\n    {bad}\n}}\n");
            let hits = lints_of(LIB, &src);
            assert_eq!(hits, vec![("L8", 3)], "{bad}: {hits:?}");
        }
    }

    #[test]
    fn l8_honors_trailing_marker_and_impl_scope() {
        // Trailing marker on the signature line.
        let src = "fn hot(x: u8) { // lint:hot\n    let v = x.to_string().clone();\n}\n";
        assert_eq!(lints_of(LIB, src), vec![("L8", 2)]);
        // An impl-level marker covers every method body inside it.
        let src = "\
// lint:hot\n\
impl Grid {\n\
    fn insert(&mut self) {\n\
        let v = Vec::new();\n\
    }\n\
}\n";
        assert_eq!(lints_of(LIB, src), vec![("L8", 4)]);
    }

    #[test]
    fn hot_marker_requires_a_plain_marker_comment() {
        // Doc comments that merely *mention* the marker (like the lint
        // engine's own documentation) must not mark the item hot.
        let src = "\
/// Detects `// lint:hot` markers in comments.\n\
fn scan() {\n\
    let v = Vec::new();\n\
}\n";
        assert!(lints_of(LIB, src).is_empty(), "{:?}", lints_of(LIB, src));
        // Nor does a string literal containing the marker text mid-line.
        let src =
            "fn f(s: &str) -> bool { s.ends_with(\"// lint:hot\") && Vec::new().is_empty() }\n";
        assert!(lints_of(LIB, src).is_empty(), "{:?}", lints_of(LIB, src));
        // But a marker comment with trailing prose still counts.
        let src = "// lint:hot — resolver inner loop\nfn hot() {\n    let v = Vec::new();\n}\n";
        assert_eq!(lints_of(LIB, src), vec![("L8", 3)]);
    }

    #[test]
    fn l11_flags_dyn_in_hot_bodies_only() {
        // A coercion inside a hot body trips.
        let src = "\
// lint:hot\n\
fn hot(rng: &mut StdRng) {\n\
    let erased: &mut dyn SlotRng = rng;\n\
    erased.pick(3);\n\
}\n";
        assert_eq!(lints_of(LIB, src), vec![("L11", 3)]);
        // A trait-object *parameter* is legal: the signature is outside
        // the body span, and the erasure happened in a cold caller.
        let src = "\
// lint:hot\n\
fn hot(rec: &mut dyn Recorder) {\n\
    rec.event(1);\n\
}\n";
        assert!(lints_of(LIB, src).is_empty(), "{:?}", lints_of(LIB, src));
        // Cold items may erase freely.
        let src = "fn cold(rng: &mut StdRng) -> Box<dyn SlotRng> { Box::new(rng) }\n";
        let hits: Vec<_> = lints_of(LIB, src)
            .into_iter()
            .filter(|(l, _)| *l == "L11")
            .collect();
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn l11_lookalikes_and_comments_do_not_trip() {
        let src = "\
// lint:hot\n\
fn hot(dynamic: u64, anodyne: u64) -> u64 {\n\
    // mentioning dyn in a comment is fine\n\
    let dyns = dynamic + anodyne;\n\
    dyns\n\
}\n";
        assert!(lints_of(LIB, src).is_empty(), "{:?}", lints_of(LIB, src));
    }

    #[test]
    fn l9_does_not_misread_ranges_as_float_literals() {
        let src = "fn f(n: usize, step: u64) {\n    let v = (0..n as u64).map(|v| v * step);\n}\n";
        let hits = lints_of(LIB, src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn l8_lookalikes_do_not_trip() {
        let src = "\
// lint:hot\n\
fn hot() {\n\
    let v = SmallVec::new_in(arena);\n\
    let s = String::from_utf8(b);\n\
    my_format!(x);\n\
    recollect(xs);\n\
}\n";
        assert!(lints_of(LIB, src).is_empty(), "{:?}", lints_of(LIB, src));
    }

    #[test]
    fn l9_flags_float_casts_through_methods_literals_and_groups() {
        for bad in [
            "let i = x.floor() as i64;",
            "let u = (r / cell).ceil() as usize;",
            "let u = (x * 1.5) as u64;",
            "let u = (12.0 * d * (g.len() as f64).ln()) as u64;",
            "let u = 2.5 as usize;",
            "let u = x as f64 as usize;",
        ] {
            let hits = lints_of(LIB, &format!("fn f() {{ {bad} }}\n"));
            assert_eq!(hits, vec![("L9", 1)], "{bad}: {hits:?}");
        }
    }

    #[test]
    fn l9_leaves_integer_casts_and_the_audited_home_alone() {
        for ok in [
            "let u = n as usize;",
            "let u = (a + b) as u64;",
            "let u = xs.len() as u64;",
            "let u = t.0 as usize;",
            "let u = 0x1e9 as u64;",
        ] {
            let hits = lints_of(LIB, &format!("fn f() {{ {ok} }}\n"));
            assert!(hits.is_empty(), "{ok}: {hits:?}");
        }
        let hits = lints_of(
            CAST_HOME,
            "pub fn floor_i64(x: f64) -> i64 { x.floor() as i64 }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn l4_extension_flags_as_i64_and_signed_as_u64() {
        // Non-float `as i64` is an L4 finding (slot counters are u64).
        assert_eq!(
            lints_of(LIB, "fn f(s: u64) -> i64 { s as i64 }\n"),
            vec![("L4", 1)]
        );
        // Float `as i64` belongs to L9, not L4 — exactly one finding.
        assert_eq!(
            lints_of(LIB, "fn f(x: f64) -> i64 { x.floor() as i64 }\n"),
            vec![("L9", 1)]
        );
        // `as u64` on an expression with a top-level minus.
        assert_eq!(
            lints_of(LIB, "fn f(a: u64, b: u64) -> u64 { (a - b) as u64 }\n"),
            vec![("L4", 1)]
        );
        // Negated literal.
        assert_eq!(
            lints_of(LIB, "fn f() -> u64 { -5 as u64 }\n"),
            vec![("L4", 1)]
        );
    }

    #[test]
    fn l4_extension_leaves_benign_u64_casts_alone() {
        for ok in [
            "let u = n as u64;",
            // Binary minus: `as` binds tighter, only `5` is cast.
            "let u = a - 5 as u64;",
            // The minus is nested below a call boundary, and `->` arrows
            // and exponent signs are not subtraction.
            "let u = (f(a - b)) as u64;",
            "let u = (x.saturating_sub(y)) as u64;",
        ] {
            let hits = lints_of(LIB, &format!("fn f() {{ {ok} }}\n"));
            assert!(hits.is_empty(), "{ok}: {hits:?}");
        }
    }
}
