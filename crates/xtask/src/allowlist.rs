//! The `xtask-lint.toml` allowlist: vetted exceptions to the lints.
//!
//! Format — an array of tables, every field required:
//!
//! ```toml
//! [[allow]]
//! lint = "L2"
//! path = "crates/geometry/src/graph.rs"
//! pattern = "expect(\"queued node has distance\")"
//! reason = "BFS invariant: every dequeued node was assigned a distance"
//! ```
//!
//! A violation is suppressed when an entry's `lint` matches, `path` equals
//! the violation's workspace-relative path, and the offending source line
//! contains `pattern`. Matching on line *content* rather than line
//! *numbers* keeps entries stable across unrelated edits; the `reason` is
//! the review record. The file is parsed with a deliberately small TOML
//! subset (only `[[allow]]` tables of string keys) — anything else is a
//! hard error so typos cannot silently disable enforcement.

use crate::lints::Violation;

/// One vetted exception.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint id, e.g. `"L2"`.
    pub lint: String,
    /// Workspace-relative path the exception applies to.
    pub path: String,
    /// Substring of the offending line that identifies the site.
    pub pattern: String,
    /// Why this site is acceptable (the documented invariant).
    pub reason: String,
    /// Line in `xtask-lint.toml` where the entry starts (for diagnostics).
    pub defined_at: usize,
}

impl AllowEntry {
    /// Whether this entry covers `v`.
    pub fn covers(&self, v: &Violation) -> bool {
        self.lint == v.lint && self.path == v.file && v.snippet.contains(&self.pattern)
    }
}

/// Parses the allowlist. Unknown keys, missing fields, or non-string
/// values are errors, not warnings.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(usize, Vec<(String, String)>)> = None;

    fn finish(
        current: Option<(usize, Vec<(String, String)>)>,
        entries: &mut Vec<AllowEntry>,
    ) -> Result<(), String> {
        let Some((at, fields)) = current else {
            return Ok(());
        };
        let get = |key: &str| -> Result<String, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("allow entry at line {at}: missing required key `{key}`"))
        };
        let entry = AllowEntry {
            lint: get("lint")?,
            path: get("path")?,
            pattern: get("pattern")?,
            reason: get("reason")?,
            defined_at: at,
        };
        if entry.reason.trim().is_empty() {
            return Err(format!("allow entry at line {at}: empty `reason`"));
        }
        for (k, _) in &fields {
            if !["lint", "path", "pattern", "reason"].contains(&k.as_str()) {
                return Err(format!("allow entry at line {at}: unknown key `{k}`"));
            }
        }
        entries.push(entry);
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries)?;
            current = Some((lineno, Vec::new()));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!(
                "line {lineno}: expected `key = \"value\"`, got {raw:?}"
            ));
        };
        let key = line[..eq].trim().to_string();
        let value = parse_string(line[eq + 1..].trim())
            .ok_or_else(|| format!("line {lineno}: value must be a double-quoted string"))?;
        match current.as_mut() {
            Some((_, fields)) => fields.push((key, value)),
            None => return Err(format!("line {lineno}: `{key}` outside an [[allow]] table")),
        }
    }
    finish(current, &mut entries)?;
    Ok(entries)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_string(s: &str) -> Option<String> {
    let b = s.as_bytes();
    if b.len() < 2 || b[0] != b'"' || b[b.len() - 1] != b'"' {
        return None;
    }
    let mut out = String::new();
    let mut i = 1;
    while i < b.len() - 1 {
        match b[i] {
            b'\\' => {
                i += 1;
                match b.get(i)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    _ => return None,
                }
            }
            c => out.push(c as char),
        }
        i += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(lint: &'static str, file: &str, snippet: &str) -> Violation {
        Violation {
            lint,
            file: file.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn parses_entries_and_matches() {
        let text = r#"
# vetted exceptions
[[allow]]
lint = "L2"
path = "crates/mac/src/srs.rs"
pattern = "expect(\"scheduled sender has a message\")"
reason = "schedule construction guarantees a queued message"
"#;
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, "L2");
        assert!(entries[0].covers(&violation(
            "L2",
            "crates/mac/src/srs.rs",
            r#"let m = q.expect("scheduled sender has a message");"#
        )));
        assert!(!entries[0].covers(&violation("L2", "crates/mac/src/srs.rs", "x.unwrap()")));
        assert!(!entries[0].covers(&violation(
            "L2",
            "crates/mac/src/other.rs",
            r#"q.expect("scheduled sender has a message")"#
        )));
    }

    #[test]
    fn missing_field_is_an_error() {
        let text = "[[allow]]\nlint = \"L2\"\npath = \"a.rs\"\npattern = \"x\"\n";
        let err = parse(text).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn empty_reason_is_an_error() {
        let text = "[[allow]]\nlint = \"L2\"\npath = \"a\"\npattern = \"b\"\nreason = \"  \"\n";
        assert!(parse(text).unwrap_err().contains("empty `reason`"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[allow]]\nlint = \"L2\"\npath = \"a\"\npattern = \"b\"\nreason = \"c\"\nline = \"7\"\n";
        assert!(parse(text).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn keys_outside_a_table_are_an_error() {
        assert!(parse("lint = \"L1\"\n").unwrap_err().contains("outside"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "\n# header\n[[allow]]  # entry\nlint = \"L1\" # id\npath = \"p\"\npattern = \"q#r\"\nreason = \"s\"\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries[0].pattern, "q#r");
    }

    #[test]
    fn empty_file_is_a_valid_empty_allowlist() {
        assert_eq!(parse("").unwrap(), Vec::new());
        assert_eq!(parse("# nothing vetted yet\n").unwrap(), Vec::new());
    }
}
