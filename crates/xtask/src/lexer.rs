//! A small Rust source "masker": comments and literal contents are blanked
//! out (preserving byte offsets and newlines) so lints can scan for tokens
//! without false positives from strings or docs, and `#[cfg(test)]` item
//! regions are identified by brace matching.
//!
//! This is deliberately a lexer, not a parser (`syn` is not vendored in
//! this workspace): it understands exactly as much Rust syntax as needed
//! to classify every byte as code / comment / string / char literal.

/// Returns `src` with every byte that is not executable code replaced by a
/// space: comment bodies, string contents (including raw strings), and
/// char literals. Newlines are preserved so line numbers keep working, and
/// the quotes of string literals are kept (masked contents only) so the
/// result remains visually alignable with the input.
pub fn mask_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;

    // Push `n` bytes of masked filler, preserving newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8]) {
        for &c in bytes {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |k| i + k);
                blank(&mut out, &b[i..end]);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'r' if starts_raw_string(b, i) => {
                let hashes = count_hashes(b, i + 1);
                let open = i + 1 + hashes; // index of the opening quote
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body_start = open + 1;
                let end = find_subslice(&b[body_start..], &closer)
                    .map_or(b.len(), |k| body_start + k + closer.len());
                out.extend_from_slice(&b[i..body_start]);
                blank(&mut out, &b[body_start..end.saturating_sub(closer.len())]);
                out.extend_from_slice(&b[end.saturating_sub(closer.len())..end]);
                i = end;
            }
            b'"' => {
                out.push(b'"');
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => {
                            blank(&mut out, &b[j..(j + 2).min(b.len())]);
                            j += 2;
                        }
                        b'"' => break,
                        c => {
                            out.push(if c == b'\n' { b'\n' } else { b' ' });
                            j += 1;
                        }
                    }
                }
                if j < b.len() {
                    out.push(b'"');
                    j += 1;
                }
                i = j;
            }
            b'\'' if is_char_literal(b, i) => {
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                } else {
                    // Multi-byte UTF-8 scalar: advance to the closing quote.
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    j = j.max(i + 1);
                }
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                let end = (j + 1).min(b.len());
                blank(&mut out, &b[i..end]);
                i = end;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Masking preserves length and only replaces bytes with ASCII spaces,
    // so the result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

fn starts_raw_string(b: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"`, but not part of an identifier like `for"` (the
    // preceding byte must not be ident-continue).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn count_hashes(b: &[u8], mut i: usize) -> usize {
    let start = i;
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i - start
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn is_char_literal(b: &[u8], i: usize) -> bool {
    // Distinguish 'x' / '\n' (char literals) from 'a in lifetimes: a char
    // literal closes with a quote within a couple of characters; a
    // lifetime never has a closing quote.
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'c' — one scalar then a quote. Look a few bytes ahead to cover
    // multi-byte UTF-8 scalars.
    for &c in &b[(i + 2).min(b.len())..(i + 6).min(b.len())] {
        if c == b'\'' {
            return true;
        }
        if c == b'\n' {
            return false;
        }
    }
    false
}

/// A half-open line range `[start, end)` (1-based) of a `#[cfg(test)]`
/// item, including the attribute line itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRegion {
    /// First line of the region (the attribute's line).
    pub start_line: usize,
    /// Last line of the region, inclusive.
    pub end_line: usize,
}

/// Finds `#[cfg(test)]`-gated item regions in *masked* source by matching
/// the braces of the following item (or running to the terminating `;` for
/// brace-less items like `#[cfg(test)] use …;`).
pub fn find_test_regions(masked: &str) -> Vec<TestRegion> {
    let mut regions = Vec::new();
    let mut search_from = 0usize;
    while let Some(rel) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let start_line = line_of(masked, attr_at);
        let after = attr_at + "#[cfg(test)]".len();
        let bytes = masked.as_bytes();
        let mut j = after;
        let mut depth = 0usize;
        let mut opened = false;
        let end_at = loop {
            if j >= bytes.len() {
                break bytes.len().saturating_sub(1);
            }
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break j;
                    }
                }
                b';' if !opened => break j,
                _ => {}
            }
            j += 1;
        };
        regions.push(TestRegion {
            start_line,
            end_line: line_of(masked, end_at),
        });
        search_from = end_at + 1;
    }
    regions
}

/// 1-based line number of byte offset `at`.
pub fn line_of(s: &str, at: usize) -> usize {
    s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let x = 1; // thread_rng\n/* panic! */ let y = 2;";
        let m = mask_non_code(src);
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("panic!"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask_non_code("/* a /* unwrap() */ b */ code()");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("code()"));
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let m = mask_non_code(r#"err("call .unwrap() now") ; x.unwrap()"#);
        assert_eq!(m.matches(".unwrap()").count(), 1);
        assert!(m.contains("err(\""));
    }

    #[test]
    fn masks_raw_strings() {
        let src = r###"let s = r#"panic! "quoted" panic!"# ; real_code()"###;
        let m = mask_non_code(src);
        assert!(!m.contains("panic!"));
        assert!(m.contains("real_code()"));
    }

    #[test]
    fn masks_escapes_inside_strings() {
        let m = mask_non_code(r#"print("a\"b.unwrap()\"c") ; keep"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("keep"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask_non_code("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'y'"));
        // The masked char literal must not unbalance later string handling.
        assert!(m.contains("let d ="));
    }

    #[test]
    fn preserves_newlines_for_line_numbers() {
        let src = "a\n// x\nb\n\"s\ntr\"\nc";
        let m = mask_non_code(src);
        assert_eq!(
            src.matches('\n').count(),
            m.matches('\n').count(),
            "newline count must survive masking"
        );
    }

    #[test]
    fn finds_cfg_test_mod_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].start_line, 2);
        assert_eq!(regions[0].end_line, 5);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end_line, 2);
    }

    #[test]
    fn nested_braces_inside_test_mod_are_matched() {
        let src = "#[cfg(test)]\nmod t {\n fn a() { if x { y(); } }\n struct S { f: u8 }\n}\nfn after() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end_line, 5);
    }
}
