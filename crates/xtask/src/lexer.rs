//! A small Rust source "masker" and item scanner: comments and literal
//! contents are blanked out (preserving byte offsets and newlines) so lints
//! can scan for tokens without false positives from strings or docs,
//! `#[cfg(test)]` item regions are identified by brace matching, and a
//! brace-matched **item tree** (fn/impl/mod spans with attribute attachment
//! and column-accurate positions) lets lints reason about *which item* a
//! token lives in — the basis of the `// lint:hot` allocation lint (L8).
//!
//! This is deliberately a lexer, not a parser (`syn` is not vendored in
//! this workspace): it understands exactly as much Rust syntax as needed
//! to classify every byte as code / comment / string / char literal and to
//! bracket item bodies.

/// Returns `src` with every byte that is not executable code replaced by a
/// space: comment bodies, string contents (including raw strings, byte
/// strings, and raw byte strings), and char/byte literals. Newlines are
/// preserved so line numbers keep working, and the quotes of string
/// literals are kept (masked contents only) so the result remains visually
/// alignable with the input — byte offsets and therefore line *and column*
/// numbers are identical between input and output.
pub fn mask_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(b.len(), |k| i + k);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Block comment (nesting honored).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &b[i..j]);
            i = j;
            continue;
        }
        // Raw strings `r"…"` / `r#"…"#` and raw byte strings `br#"…"#`.
        if (c == b'r' || c == b'b') && !ident_continues_before(b, i) {
            if let Some((open, hashes)) = raw_open_at(b, i) {
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body_start = open + 1;
                let end = find_subslice(&b[body_start..], &closer)
                    .map_or(b.len(), |k| body_start + k + closer.len());
                out.extend_from_slice(&b[i..body_start]);
                blank(&mut out, &b[body_start..end.saturating_sub(closer.len())]);
                out.extend_from_slice(&b[end.saturating_sub(closer.len())..end]);
                i = end;
                continue;
            }
        }
        // Byte string `b"…"` (cooked escapes, like a normal string).
        if c == b'b' && !ident_continues_before(b, i) && i + 1 < b.len() && b[i + 1] == b'"' {
            out.push(b'b');
            i = mask_cooked_string(&mut out, b, i + 1);
            continue;
        }
        // Byte literal `b'x'` / `b'\n'`.
        if c == b'b'
            && !ident_continues_before(b, i)
            && i + 1 < b.len()
            && b[i + 1] == b'\''
            && is_char_literal(b, i + 1)
        {
            let end = char_literal_end(b, i + 1);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Normal string literal.
        if c == b'"' {
            i = mask_cooked_string(&mut out, b, i);
            continue;
        }
        // Char literal (vs. lifetime).
        if c == b'\'' && is_char_literal(b, i) {
            let end = char_literal_end(b, i);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        out.push(c);
        i += 1;
    }
    // Masking preserves length and only replaces bytes with ASCII spaces,
    // so the result is valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

/// Pushes `bytes.len()` bytes of masked filler, preserving newlines.
fn blank(out: &mut Vec<u8>, bytes: &[u8]) {
    for &c in bytes {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    }
}

/// Whether the byte before `i` continues an identifier (so `for"`, `abr"`
/// and friends are not literal prefixes).
fn ident_continues_before(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If a raw (byte) string opens at `i`, returns `(index of the opening
/// quote, hash count)`: `r"`, `r#…#"`, `br"`, `br#…#"`.
fn raw_open_at(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return None;
        }
    }
    if b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some((j, hashes))
}

/// Masks a cooked (escaped) string literal whose opening quote is at `i`;
/// returns the index just past the closing quote. Quotes are kept, contents
/// (and escape sequences) are blanked.
fn mask_cooked_string(out: &mut Vec<u8>, b: &[u8], i: usize) -> usize {
    out.push(b'"');
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                blank(out, &b[j..(j + 2).min(b.len())]);
                j += 2;
            }
            b'"' => break,
            c => {
                out.push(if c == b'\n' { b'\n' } else { b' ' });
                j += 1;
            }
        }
    }
    if j < b.len() {
        out.push(b'"');
        j += 1;
    }
    j
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn is_char_literal(b: &[u8], i: usize) -> bool {
    // Distinguish 'x' / '\n' (char literals) from 'a in lifetimes: a char
    // literal closes with a quote within a couple of characters; a
    // lifetime never has a closing quote.
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'c' — exactly one scalar then the closing quote (`'a, 'b` in a
    // generic parameter list must NOT match: the `'` of `'b` is more than
    // one scalar away). UTF-8 scalar length comes from the leading byte.
    let scalar_len = match b[i + 1] {
        c if c < 0x80 => 1,
        c if c >= 0xf0 => 4,
        c if c >= 0xe0 => 3,
        _ => 2,
    };
    b.get(i + 1 + scalar_len) == Some(&b'\'')
}

/// Index just past the closing quote of the char literal opening at `i`.
fn char_literal_end(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        j += 2;
    } else {
        // Multi-byte UTF-8 scalar: advance to the closing quote.
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        j = j.max(i + 1);
    }
    while j < b.len() && b[j] != b'\'' {
        j += 1;
    }
    (j + 1).min(b.len())
}

/// A half-open line range `[start, end)` (1-based) of a `#[cfg(test)]`
/// item, including the attribute line itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRegion {
    /// First line of the region (the attribute's line).
    pub start_line: usize,
    /// Last line of the region, inclusive.
    pub end_line: usize,
}

/// Finds `#[cfg(test)]`-gated item regions in *masked* source by matching
/// the braces of the following item (or running to the terminating `;` for
/// brace-less items like `#[cfg(test)] use …;`).
pub fn find_test_regions(masked: &str) -> Vec<TestRegion> {
    let mut regions = Vec::new();
    let mut search_from = 0usize;
    while let Some(rel) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let start_line = line_of(masked, attr_at);
        let after = attr_at + "#[cfg(test)]".len();
        let bytes = masked.as_bytes();
        let mut j = after;
        let mut depth = 0usize;
        let mut opened = false;
        let end_at = loop {
            if j >= bytes.len() {
                break bytes.len().saturating_sub(1);
            }
            match bytes[j] {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break j;
                    }
                }
                b';' if !opened => break j,
                _ => {}
            }
            j += 1;
        };
        regions.push(TestRegion {
            start_line,
            end_line: line_of(masked, end_at),
        });
        search_from = end_at + 1;
    }
    regions
}

/// Module names declared as `#[cfg(test)] mod name;` — out-of-line test
/// modules whose *contents live in a sibling file* (`name.rs` or
/// `name/mod.rs`). The declaration line itself is already exempted by
/// [`find_test_regions`]; callers use the returned names to exempt the
/// sibling files too.
pub fn find_test_mod_decls(masked: &str) -> Vec<String> {
    let bytes = masked.as_bytes();
    let mut names = Vec::new();
    let mut search_from = 0usize;
    while let Some(rel) = masked[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let mut j = attr_at + "#[cfg(test)]".len();
        search_from = j;
        // Skip whitespace and any further attributes between the cfg and
        // the item keyword (e.g. `#[cfg(test)] #[allow(…)] mod t;`).
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes[j..].starts_with(b"#[") {
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j = (j + 1).min(bytes.len());
            } else {
                break;
            }
        }
        // Optional visibility.
        for kw in ["pub(crate)", "pub(super)", "pub"] {
            if masked[j..].starts_with(kw) {
                j += kw.len();
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                break;
            }
        }
        if !masked[j..].starts_with("mod") {
            continue;
        }
        j += 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        let name = &masked[name_start..j];
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if !name.is_empty() && bytes.get(j) == Some(&b';') {
            names.push(name.to_string());
        }
    }
    names
}

/// 1-based line number of byte offset `at`.
pub fn line_of(s: &str, at: usize) -> usize {
    s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// 1-based (byte) column number of byte offset `at`.
pub fn col_of(s: &str, at: usize) -> usize {
    let at = at.min(s.len());
    let line_start = s.as_bytes()[..at]
        .iter()
        .rposition(|&c| c == b'\n')
        .map_or(0, |p| p + 1);
    at - line_start + 1
}

/// Kind of a scanned item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free function, method, or trait default method).
    Fn,
    /// An `impl` block.
    Impl,
    /// An inline `mod` (out-of-line `mod x;` declarations have no body).
    Mod,
}

/// One item in the flat item tree: a `fn`, `impl`, or `mod` with its
/// brace-matched span, attached attributes, and hot-path marker.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (`fn foo` → `"foo"`); for `impl` blocks, the header
    /// text between `impl` and the opening brace, whitespace-normalized.
    pub name: String,
    /// Byte offset of the item keyword in the source.
    pub start: usize,
    /// 1-based line of the item keyword.
    pub start_line: usize,
    /// 1-based column of the item keyword.
    pub start_col: usize,
    /// Byte span of the `{ … }` body including both braces, if the item
    /// has one (`mod x;` and trait method declarations do not).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the item's last byte (closing brace or `;`).
    pub end_line: usize,
    /// Attribute lines attached directly above the item, top-down.
    pub attrs: Vec<String>,
    /// Whether the item carries a `// lint:hot` marker — in the comment
    /// block directly above it (alongside its attributes) or trailing on a
    /// signature line before the body opens. Hot items reject allocation
    /// in their body span (lint L8).
    pub hot: bool,
}

impl Item {
    /// Whether byte offset `at` falls inside this item's body braces.
    pub fn body_contains(&self, at: usize) -> bool {
        self.body.is_some_and(|(s, e)| (s..e).contains(&at))
    }
}

/// Scans `masked` for `fn` / `impl` / `mod` items and brace-matches their
/// bodies; `src` (the unmasked original) supplies attribute text and the
/// `// lint:hot` markers, which masking blanks out. Returns a flat list in
/// source order — nested items (a fn inside an impl inside a mod) each get
/// their own entry.
pub fn item_tree(src: &str, masked: &str) -> Vec<Item> {
    let b = masked.as_bytes();
    let mut items = Vec::new();
    for (kw, kind) in [
        ("fn", ItemKind::Fn),
        ("impl", ItemKind::Impl),
        ("mod", ItemKind::Mod),
    ] {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(kw) {
            let at = from + rel;
            from = at + 1;
            if !ident_boundary_at(b, at, kw.len()) {
                continue;
            }
            if let Some(item) = scan_item(src, masked, at, kw, kind) {
                items.push(item);
            }
        }
    }
    items.sort_by_key(|it| it.start);
    items
}

/// Whether a trimmed comment line is a hot-path marker: a plain `//`
/// comment (not `///` or `//!` doc text) whose content starts with
/// `lint:hot`.
fn is_hot_marker(trimmed: &str) -> bool {
    if trimmed.starts_with("///") || trimmed.starts_with("//!") {
        return false;
    }
    trimmed
        .strip_prefix("//")
        .is_some_and(|rest| rest.trim_start().starts_with("lint:hot"))
}

/// Identifier boundary check on raw bytes.
fn ident_boundary_at(b: &[u8], start: usize, len: usize) -> bool {
    let before_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
    let end = start + len;
    let after_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
    before_ok && after_ok
}

fn scan_item(src: &str, masked: &str, at: usize, kw: &str, kind: ItemKind) -> Option<Item> {
    let b = masked.as_bytes();
    let mut j = at + kw.len();
    while j < b.len() && b[j].is_ascii_whitespace() {
        j += 1;
    }
    // `fn` immediately followed by `(` is a function-pointer *type*
    // (`boundary: fn(&str) -> bool`), not an item.
    if kind == ItemKind::Fn && b.get(j) == Some(&b'(') {
        return None;
    }
    // Item name: the next identifier (for impl blocks the whole header is
    // captured below instead).
    let name_start = j;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    let simple_name = masked[name_start..j].to_string();
    if kind != ItemKind::Impl && simple_name.is_empty() {
        return None;
    }

    // Find the body: the first `{` outside parens/brackets/generics, or a
    // terminating `;` (no body). Generic angle brackets are tracked only
    // shallowly — enough for signatures, where `<` is never less-than.
    let mut k = j;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let body_open = loop {
        if k >= b.len() {
            return None;
        }
        match b[k] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'<' => {
                // `->` arrows: the `>` is consumed with the `-`.
                angle += 1;
            }
            b'>' => {
                if k > 0 && b[k - 1] == b'-' {
                    // return-type arrow, not a closing angle
                } else if angle > 0 {
                    angle -= 1;
                }
            }
            b'{' if paren == 0 && bracket == 0 => break Some(k),
            b';' if paren == 0 && bracket == 0 && angle <= 0 => break None,
            b'}' if paren == 0 && bracket == 0 => return None, // fn-ptr in a type position
            _ => {}
        }
        k += 1;
    };

    let (body, end_at) = match body_open {
        Some(open) => {
            let mut depth = 0usize;
            let mut m = open;
            let close = loop {
                if m >= b.len() {
                    break b.len().saturating_sub(1);
                }
                match b[m] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break m;
                        }
                    }
                    _ => {}
                }
                m += 1;
            };
            (Some((open, (close + 1).min(masked.len()))), close)
        }
        None => (None, k),
    };

    // Attribute attachment + hot marker, from the *original* source: the
    // contiguous block of `#[…]` / `//` lines directly above the item.
    let start_line = line_of(masked, at);
    let src_lines: Vec<&str> = src.lines().collect();
    let mut attrs = Vec::new();
    let mut hot = false;
    let mut li = start_line.saturating_sub(1); // 0-based index of the item's line
    while li > 0 {
        let prev = src_lines.get(li - 1).map_or("", |l| l.trim());
        if prev.starts_with("#[") {
            attrs.push(prev.to_string());
            li -= 1;
        } else if prev.starts_with("//") {
            // Only a plain `//` marker comment counts: doc comments that
            // merely *mention* `// lint:hot` (like this lint's own docs)
            // must not mark the item hot.
            if is_hot_marker(prev) {
                hot = true;
            }
            li -= 1;
        } else {
            break;
        }
    }
    attrs.reverse();
    // Trailing marker on the signature lines (item keyword to body open).
    // End-of-line anchoring keeps string literals containing the marker
    // text (`"// lint:hot"`) from counting.
    let sig_end_line = body.map_or_else(
        || line_of(masked, end_at),
        |(open, _)| line_of(masked, open),
    );
    for line in src_lines
        .iter()
        .take(sig_end_line)
        .skip(start_line.saturating_sub(1))
    {
        if line.trim_end().ends_with("// lint:hot") {
            hot = true;
        }
    }

    let name = if kind == ItemKind::Impl {
        let header_end = body.map_or(end_at, |(open, _)| open);
        masked[at + kw.len()..header_end.min(masked.len())]
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    } else {
        simple_name
    };

    Some(Item {
        kind,
        name,
        start: at,
        start_line,
        start_col: col_of(masked, at),
        body,
        end_line: line_of(masked, end_at),
        attrs,
        hot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let x = 1; // thread_rng\n/* panic! */ let y = 2;";
        let m = mask_non_code(src);
        assert!(!m.contains("thread_rng"));
        assert!(!m.contains("panic!"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn masks_nested_block_comments() {
        let m = mask_non_code("/* a /* unwrap() */ b */ code()");
        assert!(!m.contains("unwrap"));
        assert!(m.contains("code()"));
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let m = mask_non_code(r#"err("call .unwrap() now") ; x.unwrap()"#);
        assert_eq!(m.matches(".unwrap()").count(), 1);
        assert!(m.contains("err(\""));
    }

    #[test]
    fn masks_raw_strings() {
        let src = r###"let s = r#"panic! "quoted" panic!"# ; real_code()"###;
        let m = mask_non_code(src);
        assert!(!m.contains("panic!"));
        assert!(m.contains("real_code()"));
    }

    #[test]
    fn masks_escapes_inside_strings() {
        let m = mask_non_code(r#"print("a\"b.unwrap()\"c") ; keep"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("keep"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let m = mask_non_code("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }");
        assert!(m.contains("<'a>"));
        assert!(m.contains("&'a str"));
        assert!(!m.contains("'y'"));
        // The masked char literal must not unbalance later string handling.
        assert!(m.contains("let d ="));
    }

    #[test]
    fn preserves_newlines_for_line_numbers() {
        let src = "a\n// x\nb\n\"s\ntr\"\nc";
        let m = mask_non_code(src);
        assert_eq!(
            src.matches('\n').count(),
            m.matches('\n').count(),
            "newline count must survive masking"
        );
    }

    // --- golden edge cases: exact line/column preservation ------------------

    /// Masking must preserve length, every newline position, and the
    /// position of every surviving code byte.
    fn assert_offsets_preserved(src: &str) {
        let m = mask_non_code(src);
        assert_eq!(m.len(), src.len(), "masking must preserve byte length");
        let (sb, mb) = (src.as_bytes(), m.as_bytes());
        for i in 0..sb.len() {
            if sb[i] == b'\n' {
                assert_eq!(mb[i], b'\n', "newline at byte {i} must survive");
            } else {
                assert!(
                    mb[i] == sb[i] || mb[i] == b' ',
                    "byte {i}: masked output may only keep or blank ({} -> {})",
                    sb[i] as char,
                    mb[i] as char
                );
            }
            if mb[i] != b' ' && mb[i] != b'\n' {
                assert_eq!(mb[i], sb[i], "kept byte {i} must equal the input");
            }
        }
    }

    #[test]
    fn golden_nested_raw_strings() {
        let src = "let s = r##\"outer \"# panic! \"# inner\"## ;\nlet t = x.unwrap();";
        let m = mask_non_code(src);
        assert!(!m.contains("panic!"), "{m}");
        assert_eq!(m.matches("unwrap").count(), 1);
        // The `"#` sequences inside must not close the `r##` string early.
        assert!(!m.contains("inner"));
        assert_offsets_preserved(src);
        // Column of the surviving `.unwrap()` is identical in src and mask.
        assert_eq!(src.find("x.unwrap"), m.find("x.unwrap"));
    }

    #[test]
    fn golden_byte_string_literals() {
        let src = "let a = b\"panic! inside\"; let b2 = br#\"unwrap() \" raw\"#; done()";
        let m = mask_non_code(src);
        assert!(!m.contains("panic!"), "{m}");
        assert!(!m.contains("unwrap"), "{m}");
        assert!(m.contains("done()"));
        assert_offsets_preserved(src);
    }

    #[test]
    fn golden_byte_literal_vs_identifier() {
        let src = "let c = b'x'; let esc = b'\\''; keep_me()";
        let m = mask_non_code(src);
        assert!(!m.contains("b'x'"));
        assert!(m.contains("keep_me()"));
        assert_offsets_preserved(src);
        // An identifier ending in b followed by a string is not a prefix.
        let src2 = "grab\"panic!\" ; tail()";
        let m2 = mask_non_code(src2);
        assert!(m2.contains("grab\""));
        assert!(!m2.contains("panic!"));
        assert_offsets_preserved(src2);
    }

    #[test]
    fn golden_char_literals_vs_lifetimes() {
        let src = "impl<'a, 'b> Foo<'a> { fn f(&'a self) { let q = '\\''; let z = 'z'; } }";
        let m = mask_non_code(src);
        assert!(m.contains("<'a, 'b>"), "lifetimes kept: {m}");
        assert!(m.contains("&'a self"));
        assert!(!m.contains("'z'"));
        assert_offsets_preserved(src);
    }

    #[test]
    fn golden_crlf_line_endings() {
        let src = "fn a() {}\r\n// panic! in comment\r\nlet s = \"panic!\";\r\nx.unwrap();\r\n";
        let m = mask_non_code(src);
        assert_eq!(m.matches("panic!").count(), 0);
        assert_eq!(m.matches("unwrap").count(), 1);
        assert_offsets_preserved(src);
        // Line/column of the unwrap site are identical under CRLF.
        let at = m.find(".unwrap").unwrap();
        assert_eq!(line_of(&m, at), 4);
        assert_eq!(
            col_of(&m, at),
            src.lines().nth(3).unwrap().find(".unwrap").unwrap() + 1
        );
    }

    #[test]
    fn col_of_reports_one_based_byte_columns() {
        let s = "abc\ndef g\n";
        assert_eq!(col_of(s, 0), 1);
        assert_eq!(col_of(s, 2), 3);
        assert_eq!(col_of(s, 4), 1); // 'd'
        assert_eq!(col_of(s, 8), 5); // 'g'
    }

    // --- test-region detection ----------------------------------------------

    #[test]
    fn finds_cfg_test_mod_region() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn b() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].start_line, 2);
        assert_eq!(regions[0].end_line, 5);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end_line, 2);
    }

    #[test]
    fn nested_braces_inside_test_mod_are_matched() {
        let src = "#[cfg(test)]\nmod t {\n fn a() { if x { y(); } }\n struct S { f: u8 }\n}\nfn after() {}\n";
        let regions = find_test_regions(&mask_non_code(src));
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end_line, 5);
    }

    #[test]
    fn finds_out_of_line_test_mod_declarations() {
        let src = "fn a() {}\n#[cfg(test)]\nmod golden;\n#[cfg(test)]\npub mod shared_cases;\n";
        let names = find_test_mod_decls(&mask_non_code(src));
        assert_eq!(
            names,
            vec!["golden".to_string(), "shared_cases".to_string()]
        );
    }

    #[test]
    fn inline_test_mods_are_not_sibling_declarations() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n";
        assert!(find_test_mod_decls(&mask_non_code(src)).is_empty());
        // `#[cfg(test)] use …;` is not a mod declaration either.
        let src = "#[cfg(test)]\nuse helpers::x;\n";
        assert!(find_test_mod_decls(&mask_non_code(src)).is_empty());
    }

    #[test]
    fn test_mod_decl_with_interleaved_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod fixture_cases;\n";
        assert_eq!(
            find_test_mod_decls(&mask_non_code(src)),
            vec!["fixture_cases".to_string()]
        );
    }

    // --- item tree -----------------------------------------------------------

    fn items_of(src: &str) -> Vec<Item> {
        item_tree(src, &mask_non_code(src))
    }

    #[test]
    fn item_tree_finds_fns_impls_and_mods_with_spans() {
        let src = "\
mod outer {
    impl Foo for Bar {
        fn method(&self) -> usize {
            self.x
        }
    }
    fn free() {}
}
";
        let items = items_of(src);
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![ItemKind::Mod, ItemKind::Impl, ItemKind::Fn, ItemKind::Fn]
        );
        let method = items.iter().find(|i| i.name == "method").unwrap();
        assert_eq!(method.start_line, 3);
        assert_eq!(method.start_col, 9);
        assert_eq!(method.end_line, 5);
        let (bs, be) = method.body.unwrap();
        assert!(src[bs..be].contains("self.x"));
        let imp = items.iter().find(|i| i.kind == ItemKind::Impl).unwrap();
        assert_eq!(imp.name, "Foo for Bar");
        assert_eq!(imp.end_line, 6);
        let outer = items.iter().find(|i| i.name == "outer").unwrap();
        assert_eq!((outer.start_line, outer.end_line), (1, 8));
    }

    #[test]
    fn item_tree_attaches_attributes() {
        let src = "#[inline]\n#[must_use]\nfn fast() -> usize { 1 }\n";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].attrs, vec!["#[inline]", "#[must_use]"]);
        assert!(!items[0].hot);
    }

    #[test]
    fn hot_marker_above_and_trailing() {
        let above = "// lint:hot\n#[inline]\nfn hot_above() { work(); }\n";
        assert!(items_of(above)[0].hot, "marker above the attributes");
        let trailing = "fn hot_trailing( // lint:hot\n    x: usize,\n) -> usize { x }\n";
        let items = items_of(trailing);
        assert!(items[0].hot, "marker trailing the signature");
        let cold = "fn cold() { /* lint:hot in a body comment does not count */ }\n";
        assert!(!items_of(cold)[0].hot);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct S { f: fn(&str, usize) -> bool }\nfn real() {}\n";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn bodyless_fns_and_mod_decls_have_no_body() {
        let src = "trait T { fn decl(&self); }\nmod sibling;\n";
        let items = items_of(src);
        let decl = items.iter().find(|i| i.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let sib = items.iter().find(|i| i.name == "sibling").unwrap();
        assert!(sib.body.is_none());
        assert_eq!(sib.end_line, 2);
    }

    #[test]
    fn generic_fn_with_where_clause_brace_matches() {
        let src = "\
fn generic<T: Ord>(v: Vec<T>) -> Option<T>
where
    T: Clone,
{
    v.into_iter().max()
}
";
        let items = items_of(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].end_line, 6);
        let (bs, _) = items[0].body.unwrap();
        assert_eq!(line_of(src, bs), 4);
    }

    #[test]
    fn body_contains_uses_byte_offsets() {
        let src = "fn a() { inner(); }\nfn b() { other(); }\n";
        let items = items_of(src);
        let a = &items[0];
        let at_inner = src.find("inner").unwrap();
        let at_other = src.find("other").unwrap();
        assert!(a.body_contains(at_inner));
        assert!(!a.body_contains(at_other));
    }
}
