//! fixture: crates/sinr/src/fixture.rs
//! L8 — the incremental-resolver loop shapes: delta-apply and
//! cell-resummation loops run once per slot and carry `// lint:hot`;
//! in-place index updates are clean, per-slot allocation is flagged.

// lint:hot — delta apply, runs once per started/stopped transmitter
fn apply_delta(started: &[usize], stopped: &[usize], members: &mut [u32], count: &mut u32) {
    let mut undo = Vec::new(); //~ L8
    for &t in stopped {
        members[t] = u32::MAX;
        *count -= 1;
        undo.push(t); // pushes are not allocation sites; the Vec::new above is
    }
    for &t in started {
        members[t] = *count;
        *count += 1;
    }
}

// lint:hot — cell resummation, runs once per stamped cell per slot
fn resum_cells(cells: &[u32], power: &mut [f64], contrib: &[f64]) {
    let touched = cells.to_vec(); //~ L8
    for &c in &touched {
        power[c as usize] = 0.0;
    }
    for (&c, &p) in cells.iter().zip(contrib) {
        power[c as usize] += p;
    }
}

fn cold_rebuild(cells: &[u32]) -> Vec<f64> {
    // Epoch rebuilds are cold by design: fresh allocation is fine here.
    vec![0.0; cells.len()]
}
