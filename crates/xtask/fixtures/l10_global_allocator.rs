//! fixture: crates/radiosim/src/fixture.rs
//! L10 — allocator hooks belong in binaries, not library crates.

use std::alloc::System; //~ L10

#[global_allocator] //~ L10
static ALLOC: System = System;

fn direct_alloc() {
    let layout = core::alloc::Layout::new::<u64>();
    unsafe {
        let p = std::alloc::alloc(layout); //~ L10
        std::alloc::dealloc(p, layout); //~ L10
    }
}
