//! fixture: crates/core/src/fixture.rs
//! L7 — entropy-keyed std hash collections in library non-test code.

use std::collections::HashMap; //~ L7
use sinr_rng::DetHashMap;

type Neighbors = std::collections::HashSet<u64>; //~ L7

fn build(keys: &[u64]) -> usize {
    let det: DetHashMap<u64, u64> = DetHashMap::default();
    det.len() + keys.len()
}
