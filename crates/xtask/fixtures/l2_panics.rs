//! fixture: crates/mac/src/fixture.rs
//! L2 — panicking constructs in library non-test code.

fn panicking(x: Option<u64>) -> u64 {
    let a = x.unwrap(); //~ L2
    let b = x.expect("present"); //~ L2
    if a == 0 {
        panic!("zero"); //~ L2
    }
    a + b
}

fn recovering(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}
