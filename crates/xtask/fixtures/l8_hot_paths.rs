//! fixture: crates/sinr/src/fixture.rs
//! L8 — allocation/formatting inside `// lint:hot` items; cold items and
//! lookalike identifiers stay clean.

// lint:hot
fn hot_phase(xs: &[u64], out: &mut [u64]) {
    let scratch = Vec::new(); //~ L8
    let gathered = xs.iter().copied().collect::<Vec<u64>>(); //~ L8
    let label = format!("slot"); //~ L8
    let copied = gathered.clone(); //~ L8
    out[0] = copied.len() as u64 + scratch.len() as u64 + label.len() as u64;
}

// lint:hot
fn hot_lookalikes(xs: &[u64]) -> u64 {
    let v = ArrayVec::new_like();
    let s = String::from_utf8(vec_like(xs));
    recollect(xs);
    v + s.len() as u64
}

fn cold_phase() -> Vec<u8> {
    vec![0u8; 8]
}
