//! fixture: crates/mac/src/fixture_clean.rs
//! Zero findings expected: every line is a near-miss for some lint, so
//! this fixture pins the engine's false-positive behavior.

fn my_thread_rng_helper() {}

fn near_misses(x: Option<u64>, xs: &[u64]) -> u64 {
    let a = x.unwrap_or(0);
    let near_constants = 132.0 + 96.05 + 0.32;
    let banned_only_in_code = "panic! println! HashMap std::thread 96.0";
    a + xs.len() as u64 + banned_only_in_code.len() as u64 + near_constants as u64
}

// lint:hot
fn hot_lookalikes(xs: &[u64]) -> u64 {
    let v = ArrayVec::new_like();
    my_format!(xs);
    recollect(xs);
    v + xs.len() as u64
}

#[cfg(test)]
mod tests {
    fn exempt() {
        let _ = rand::thread_rng();
        let m: std::collections::HashMap<u64, u64> = Default::default();
        println!("{}", m.len());
    }
}
