//! fixture: crates/cli/src/fixture.rs
//! L1 — unseeded RNG constructors are banned everywhere outside tests,
//! even in binary crates.

fn seed_sources() {
    let mut r = rand::thread_rng(); //~ L1
    let s = StdRng::from_entropy(); //~ L1
    let o = OsRng; //~ L1
    drop((r, s, o));
}

#[cfg(test)]
mod tests {
    fn exempt() {
        let _ = rand::thread_rng(); // test region: allowed
    }
}
