//! fixture: crates/mac/src/fixture.rs
//! L4 — lossy id/slot-counter casts: narrowing, `as i64` on counters, and
//! `as u64` on visibly signed expressions.

fn casts(id: usize, slot: u64, a: u64, b: u64) -> u64 {
    let small = id as u32; //~ L4
    let signed = slot as i64; //~ L4
    let wrapped = (a - b) as u64; //~ L4
    let widened = id as u64;
    let sub_is_nested = a.saturating_sub(b) as u64;
    u64::from(small) + signed.unsigned_abs() + wrapped + widened + sub_is_nested
}
