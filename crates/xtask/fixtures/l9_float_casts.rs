//! fixture: crates/geometry/src/fixture.rs
//! L9 — float→int casts that must route through sinr_geometry::cast.

fn grid(x: f64, cell: f64, n: usize) -> usize {
    let key = (x / cell).floor() as i64; //~ L9
    let span = (cell * 1.5) as u64; //~ L9
    let idx = x.ceil() as usize; //~ L9
    let chained = x as f64 as usize; //~ L9
    let wide = n as u64;
    idx + chained + key.unsigned_abs() as usize + span as usize + wide as usize
}
