//! fixture: crates/mac/src/fixture.rs
//! L6 — threading primitives outside the deterministic worker pool.

use std::thread; //~ L6
use std::sync::Mutex; //~ L6

fn spawn_direct() {
    std::thread::spawn(|| {}); //~ L6
    thread::scope(|_s| {}); //~ L6
}
