//! fixture: crates/mac/src/fixture.rs
//! L3 — paper-formula constants outside their audited homes.

fn radii(rho: f64) -> f64 {
    let r_i = 96.0 * rho; //~ L3
    let d = 32.0_f64 * rho; //~ L3
    let bound = 16.0 + rho; //~ L3
    r_i + d + bound + 132.0 + 96.05
}
