//! fixture: crates/obs/src/fixture.rs
//! L5 — console output in library non-test code.

fn chatty(x: u64) {
    println!("x = {x}"); //~ L5
    eprintln!("warn"); //~ L5
    dbg!(x); //~ L5
}

#[cfg(test)]
mod tests {
    fn exempt() {
        println!("tests may print");
    }
}
