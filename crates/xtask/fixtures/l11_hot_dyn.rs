//! fixture: crates/sinr/src/fixture.rs
//! L11 — `dyn` coercions inside `// lint:hot` bodies; trait-object
//! parameters in signatures and cold items stay clean.

// lint:hot
fn hot_erases(rng: &mut StdRng, out: &mut [u64]) {
    let erased: &mut dyn SlotRng = rng; //~ L11
    out[0] = erased.pick(7);
    dispatch(rng as &dyn Roller); //~ L11
}

// lint:hot
fn hot_receives(rec: &mut dyn Recorder, out: &mut [u64]) {
    // The `dyn` in the signature above is legal: the erasure happened in
    // a cold caller. Only the body is scanned.
    out[0] = rec.len() as u64;
}

// lint:hot
fn hot_lookalikes(dynamic: u64, anodyne: u64) -> u64 {
    // Identifier lookalikes must not trip the boundary check.
    let dyns = dynamic + anodyne;
    dyns
}

fn cold_erase(rng: &mut StdRng) -> Box<dyn SlotRng> {
    Box::new(RandSlotRng(rng.clone()))
}
