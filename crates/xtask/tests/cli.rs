//! End-to-end tests for the `cargo xtask lint` binary: schema v2 JSON
//! round-trips through the in-repo parser (`sinr_obs::json`), SARIF carries
//! the full rule catalog, `--explain`/`--self-test` work, and the docs stay
//! in sync with the rule strings.

use std::path::PathBuf;
use std::process::{Command, Output};

use sinr_obs::json::{parse_value, Json};

fn xtask(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawns the xtask binary")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

#[test]
fn workspace_is_lint_clean_and_json_report_round_trips() {
    let out = xtask(&["lint", "--format", "json"]);
    let doc = parse_value(&stdout_of(&out)).expect("stdout is one JSON document");

    assert_eq!(doc.get("version").and_then(Json::as_i64), Some(2));
    let summary = doc.get("summary").expect("summary object");
    assert!(summary.get("files_scanned").and_then(Json::as_i64) > Some(50));
    assert_eq!(
        summary.get("reported").and_then(Json::as_i64),
        Some(0),
        "workspace must be lint-clean: {}",
        stdout_of(&out)
    );
    let ratchet = doc.get("ratchet").expect("ratchet section");
    assert_eq!(ratchet.get("checked").and_then(Json::as_bool), Some(true));
    assert_eq!(
        ratchet
            .get("regressions")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0)
    );
    assert!(out.status.success(), "clean run exits 0");
}

#[test]
fn sarif_output_embeds_the_full_rule_catalog() {
    let out = xtask(&["lint", "--format", "sarif"]);
    let doc = parse_value(&stdout_of(&out)).expect("stdout is one SARIF document");

    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .expect("runs array");
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("xtask-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(Json::as_array)
        .expect("rules array");
    assert_eq!(rules.len(), xtask::rules::RULES.len());
    for (emitted, rule) in rules.iter().zip(xtask::rules::RULES.iter()) {
        assert_eq!(emitted.get("id").and_then(Json::as_str), Some(rule.id));
        assert_eq!(
            emitted
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Json::as_str),
            Some(rule.title)
        );
    }
    assert!(runs[0].get("results").and_then(Json::as_array).is_some());
}

#[test]
fn explain_prints_rule_strings_and_rejects_unknown_ids() {
    let out = xtask(&["lint", "--explain", "L8"]);
    assert!(out.status.success());
    let text = stdout_of(&out);
    let rule = xtask::rules::rule("L8").expect("L8 exists");
    assert!(text.contains(rule.title));
    assert!(text.contains(rule.rationale));
    assert!(text.contains(rule.fix));

    let out = xtask(&["lint", "--explain", "L42"]);
    assert_eq!(out.status.code(), Some(2), "unknown id is a usage error");
}

#[test]
fn self_test_passes_against_the_fixture_tree() {
    let out = xtask(&["lint", "--self-test"]);
    let text = stdout_of(&out);
    assert!(out.status.success(), "self-test failed:\n{text}");
    assert!(text.contains("0 mismatch(es)"), "{text}");
}

#[test]
fn ratchet_slack_is_reported_and_tolerated() {
    let slack_file = std::env::temp_dir().join("xtask-e2e-slack.ratchet");
    std::fs::write(&slack_file, "L2 = 500\n").expect("writes temp ratchet");
    let out = xtask(&[
        "lint",
        "--format",
        "json",
        "--ratchet",
        slack_file.to_str().expect("utf-8 temp path"),
    ]);
    let doc = parse_value(&stdout_of(&out)).expect("stdout is one JSON document");
    let ratchet = doc.get("ratchet").expect("ratchet section");
    let slack = ratchet
        .get("slack")
        .and_then(Json::as_array)
        .expect("slack array");
    assert!(
        slack
            .iter()
            .any(|d| d.get("lint").and_then(Json::as_str) == Some("L2")
                && d.get("budget").and_then(Json::as_i64) == Some(500)),
        "expected L2 slack entry"
    );
    assert!(out.status.success(), "slack warns but does not fail");
    let _ = std::fs::remove_file(&slack_file);
}

#[test]
fn docs_quote_the_rule_catalog_verbatim() {
    let doc = std::fs::read_to_string(repo_root().join("docs/LINTING.md"))
        .expect("docs/LINTING.md exists");
    for rule in xtask::rules::RULES.iter() {
        assert!(
            doc.contains(rule.id),
            "docs/LINTING.md is missing rule {}",
            rule.id
        );
        assert!(
            doc.contains(rule.title),
            "docs/LINTING.md must quote the title of {} verbatim: `{}`",
            rule.id,
            rule.title
        );
    }
    for marker in ["lint:hot", "--explain", "--self-test", "ratchet", "sarif"] {
        assert!(
            doc.contains(marker),
            "docs/LINTING.md is missing `{marker}`"
        );
    }
}
