#![warn(missing_docs)]

//! A minimal, dependency-free micro-benchmark harness.
//!
//! Consumed under the name `criterion` (see the workspace `Cargo.toml`
//! dependency rename) so the `benches/` files keep the familiar criterion
//! API: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and [`black_box`].
//!
//! Measurement model: each benchmark is warmed up once, then timed over a
//! fixed number of samples with the per-sample iteration count auto-scaled
//! toward [`Criterion::target_sample_time`]. Mean, minimum, and maximum
//! per-iteration times are printed. Statistical analysis, HTML reports,
//! and baseline comparisons are out of scope — run experiments `e1`–`e21`
//! (`cargo run -p sinr-bench --bin experiments`) for the paper's
//! quantitative claims.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a benchmarked
/// computation or hoisting it out of the timing loop.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level harness state handed to every benchmark function.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Samples collected per benchmark.
    pub sample_size: usize,
    /// Budget each sample's iteration count is scaled toward.
    pub target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(10),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let stats = drive(self.sample_size, self.target_sample_time, &mut f);
        stats.report(name);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let stats = drive(self.samples(), self.criterion.target_sample_time, &mut f);
        stats.report(&format!("{}/{}", self.name, id.label));
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = drive(
            self.samples(),
            self.criterion.target_sample_time,
            &mut |b| f(b, input),
        );
        stats.report(&format!("{}/{}", self.name, id.label));
    }

    /// Ends the group (kept for criterion API parity; reporting happens
    /// per-benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Hands the benchmark body its timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

impl Stats {
    fn report(&self, label: &str) {
        println!(
            "bench {label:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} it/sample)",
            self.mean, self.min, self.max, self.iters_per_sample
        );
    }
}

fn drive<F: FnMut(&mut Bencher)>(samples: usize, target: Duration, f: &mut F) -> Stats {
    // Warmup + calibration: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters_per_sample.max(1) as u32);
    }
    let total: Duration = per_iter.iter().sum();
    Stats {
        mean: total / per_iter.len() as u32,
        min: per_iter.iter().copied().min().unwrap_or_default(),
        max: per_iter.iter().copied().max().unwrap_or_default(),
        iters_per_sample,
    }
}

/// Bundles benchmark functions into a callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_every_iteration() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn group_runs_bodies_and_respects_sample_size() {
        let mut c = Criterion {
            sample_size: 3,
            target_sample_time: Duration::from_micros(50),
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(1), &5u64, |b, &x| {
                runs += 1;
                b.iter(|| black_box(x) * 2);
            });
            g.finish();
        }
        // warmup + 2 samples
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("e1").label, "e1");
    }

    #[test]
    fn macros_compose() {
        fn noop(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        }
        criterion_group!(tiny, noop);
        tiny();
    }
}
