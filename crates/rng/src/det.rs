//! Deterministically-hashed collections.
//!
//! `std::collections::HashMap`'s default `RandomState` draws a fresh hash
//! key from the OS per process, so **iteration order differs between
//! runs** — exactly the nondeterminism this workspace bans (lint `L7`,
//! `cargo xtask lint`). [`DetHashMap`] / [`DetHashSet`] are the sanctioned
//! replacements when a hash table's O(1) lookups are genuinely needed:
//! the same `HashMap`/`HashSet` API, but hashed with a fixed-key FxHash
//! variant, so the table layout — and therefore iteration order — is a
//! pure function of the *insertion sequence*, identical across runs,
//! platforms, and releases (the hash function is part of this crate's
//! stability contract, like the [`StdRng`](crate::rngs::StdRng) stream).
//!
//! Iteration order is deterministic but still *arbitrary* (it follows the
//! hash function and insertion history, not key order). Code whose
//! **output** depends on visit order should iterate over a sorted key
//! list or a `BTreeMap` instead; the determinism here guarantees
//! reproducibility, not meaningfulness, of the order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` with the deterministic fixed-key hasher.
///
/// Construct with `DetHashMap::default()` (the `new()` constructor is only
/// available for `RandomState`-hashed maps).
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// A `HashSet` with the deterministic fixed-key hasher.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

/// The `BuildHasher` of [`DetHashMap`]: builds every [`DetHasher`] in the
/// same (default) state, with no per-process entropy.
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// An FxHash-style multiply-xor hasher with a fixed word constant.
///
/// Not DoS-resistant — that is the point: there is no secret key, so the
/// hash of a value is the same in every process. Fast enough for hot
/// paths (one multiply + rotate + xor per 8 bytes), and the constant is
/// the same golden-ratio word the rest of the workspace uses for seed
/// derivation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher {
    state: u64,
}

/// 2^64 / φ, the usual Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl DetHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy keys (small ints) still
        // spread across the table.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add_word(u64::from_le_bytes(w));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            // Length tag keeps `[1]` and `[1, 0]` distinct.
            w[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_insertions_same_iteration_order() {
        let build = |keys: &[i64]| -> Vec<i64> {
            let mut m: DetHashMap<i64, usize> = DetHashMap::default();
            for (i, &k) in keys.iter().enumerate() {
                m.insert(k, i);
            }
            m.keys().copied().collect()
        };
        // Iteration order must be a pure function of the insertion
        // sequence — no per-process hash key (RandomState would give a
        // different order on every run; two same-sequence maps still
        // agree within a run, so the cross-run pin is the golden test
        // below plus the fixed SEED constant).
        let keys = [5i64, -2, 99, 0, 7, 1 << 40, -(1 << 33)];
        assert_eq!(build(&keys), build(&keys));
    }

    #[test]
    fn golden_order_is_stable_across_releases() {
        // The table layout for a fixed key set is part of the crate
        // contract; this pin catches accidental hasher changes.
        let mut m: DetHashMap<u64, ()> = DetHashMap::default();
        for k in 0..8u64 {
            m.insert(k, ());
        }
        let order: Vec<u64> = m.keys().copied().collect();
        let again: Vec<u64> = m.keys().copied().collect();
        assert_eq!(order, again);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn set_and_tuple_keys_work() {
        let mut s: DetHashSet<(i64, i64)> = DetHashSet::default();
        assert!(s.insert((3, -4)));
        assert!(!s.insert((3, -4)));
        assert!(s.contains(&(3, -4)));
        assert!(!s.contains(&(4, 3)));
    }

    #[test]
    fn byte_slices_of_different_lengths_hash_differently() {
        use std::hash::BuildHasher;
        let bh = DetBuildHasher::default();
        let h = |v: &[u8]| bh.hash_one(v);
        assert_ne!(h(&[1]), h(&[1, 0]));
        assert_ne!(h(&[]), h(&[0]));
    }
}
