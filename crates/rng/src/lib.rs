#![warn(missing_docs)]

//! Seeded-only deterministic random number generation.
//!
//! Every simulation in this workspace must be exactly reproducible from a
//! `u64` seed (`tests/determinism.rs` is load-bearing for the paper's
//! claims), so this crate deliberately exposes **no** entropy-based
//! constructor: there is no `thread_rng`, no `from_entropy`, no `OsRng`.
//! The only way to obtain a generator is [`SeedableRng::seed_from_u64`],
//! which makes the `L1 no-unseeded-rng` lint (`cargo xtask lint`)
//! enforceable at the API level, not just by convention.
//!
//! The API mirrors the subset of the `rand` crate the workspace uses
//! (`Rng::random`, `Rng::random_range`, `rngs::StdRng`), so call sites read
//! identically; only the `use` lines differ.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-tested statistically, and stable across platforms and releases
//! (the stream for a given seed is part of this crate's contract; see
//! `docs/LINTING.md`).

use std::ops::{Range, RangeInclusive};

pub mod det;

pub use det::{DetHashMap, DetHashSet};

/// Types constructible from a plain `u64` seed.
///
/// This is the *only* construction path for generators in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire output stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of pseudo-random data plus the sampling adapters the workspace
/// uses.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T` (see [`Standard`]).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    ///
    /// Supported ranges: half-open and inclusive `f64` ranges, and
    /// half-open integer ranges over `usize`, `u64`, `u32`, `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distribution of "a uniformly random value of this type".
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = f64::sample(rng);
        // f ∈ [0,1) keeps the result strictly below `end` for finite spans.
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit fraction scaled to [0,1] (inclusive) so `hi` is attainable.
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + f * (hi - lo)
    }
}

/// Uniform `u64` in `[0, bound)` by rejection of the biased tail.
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, i64, i32);

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    ///
    /// Cheap to clone; cloning forks the stream (both copies continue from
    /// the same state).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // Expand the seed into four independent words; xoshiro forbids
            // the all-zero state and SplitMix64 never yields it from four
            // consecutive outputs.
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn inclusive_range_with_zero_span_returns_endpoint() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(rng.random_range(4.0..=4.0), 4.0);
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(5u64..8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn bounded_sampling_is_unbiased_for_power_of_two() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // The first outputs for seed 0 are part of the crate contract:
        // experiment results cite seeds, so the mapping may never change.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
