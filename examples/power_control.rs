//! Power control under SINR: the near–far problem and the §V power-scaling
//! trick for distance-d colorings.
//!
//! ```text
//! cargo run --release --example power_control
//! ```

use sinr_geometry::{Point, UnitDiskGraph};
use sinr_model::{InterferenceModel, NonUniformSinrModel, PowerAssignment, SinrConfig};

fn main() {
    let cfg = SinrConfig::default_unit();

    // --- Part 1: the near-far problem ---------------------------------
    // A far sender (0.9 away) talks to a receiver while a near interferer
    // (0.3 away) runs its own short link.
    let pts = vec![
        Point::new(0.0, 0.0),  // receiver of the long link
        Point::new(0.9, 0.0),  // far sender
        Point::new(0.0, 0.3),  // near node with its own traffic
        Point::new(0.0, 0.35), // the near node's receiver
    ];
    let g = UnitDiskGraph::new(pts, cfg.r_t());
    let tx = [1usize, 2];

    let equal = NonUniformSinrModel::new(cfg, PowerAssignment::uniform(4, 1.0));
    let t = equal.resolve(&g, &tx);
    println!(
        "equal power     : long link receiver hears {:?}",
        t.unique_sender(0)
    );
    assert_eq!(
        t.unique_sender(0),
        Some(2),
        "near node captures the channel"
    );

    // Power control: the short link needs almost no power.
    let mut powers = PowerAssignment::uniform(4, 1.0);
    powers.set(2, 0.001);
    println!(
        "controlled      : node 2 power 1.0 -> 0.001 (its range: {:.2} R_T, still covers 0.05)",
        powers.range_of(&cfg, 2)
    );
    let controlled = NonUniformSinrModel::new(cfg, powers);
    let t = controlled.resolve(&g, &tx);
    println!(
        "controlled      : long link hears {:?}, short link hears {:?}",
        t.unique_sender(0),
        t.unique_sender(3)
    );
    assert_eq!(t.unique_sender(0), Some(1));
    assert_eq!(t.unique_sender(3), Some(2));

    // --- Part 2: global power scaling (§V) -----------------------------
    // Raising every node's power by d^alpha scales every derived radius
    // by d — the transformation behind the distance-d coloring.
    let d = cfg.guard_distance() + 1.0;
    let scaled = cfg.scaled_range(d);
    println!(
        "\n§V scaling      : P x {:.1} (= d^α, d+1 = {:.2}) => R_T {:.2} -> {:.2}, R_I {:.1} -> {:.1}",
        d.powf(cfg.alpha()),
        d,
        cfg.r_t(),
        scaled.r_t(),
        cfg.r_i(),
        scaled.r_i()
    );
    assert!((scaled.r_t() - d * cfg.r_t()).abs() < 1e-9);
    println!("OK — power control resolves near-far; power scaling implements G^d.");
}
