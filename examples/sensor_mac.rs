//! Sensor-network MAC scheduling: from raw node positions to an
//! interference-free TDMA schedule (§V, Theorem 3), plus the Δ+1 palette
//! reduction.
//!
//! Scenario: a field of sensor clusters (dense hot spots around data
//! sinks) that needs a collision-free MAC layer so every sensor can report
//! to all neighbors once per frame.
//!
//! ```text
//! cargo run --release --example sensor_mac
//! ```

use sinr_coloring::distance_d::color_at_distance;
use sinr_coloring::palette::reduce_palette;
use sinr_coloring::verify::is_distance_coloring;
use sinr_geometry::greedy::Coloring;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::{theorem3_d, theorem3_distance_factor};
use sinr_mac::tdma::{broadcast_audit, TdmaSchedule};
use sinr_model::SinrConfig;
use sinr_radiosim::WakeupSchedule;

fn main() {
    let cfg = SinrConfig::default_unit();

    // Clustered deployment: 8 clusters of 12 sensors in a 9x9 field.
    let pts = placement::clustered(8, 12, 9.0, 9.0, 0.8, 2024);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    println!(
        "deployment      : {} sensors in 8 clusters, Δ = {}",
        graph.len(),
        graph.max_degree()
    );

    // Theorem 3: schedule from a (d+1, V)-coloring.
    let d = theorem3_d(&cfg);
    let factor = theorem3_distance_factor(&cfg);
    println!("guard distance  : d = {d:.2} → need a ({factor:.2}, V)-coloring");

    let colored = color_at_distance(&pts, &cfg, factor, 9, WakeupSchedule::Synchronous);
    let colors = colored.colors().expect("coloring completed");
    assert!(is_distance_coloring(&pts, colors, factor * cfg.r_t()));
    println!(
        "coloring        : {} slots on G^d (Δ' = {}), distance-{:.2} proper",
        colored.outcome.slots,
        colored.graph_d.max_degree(),
        factor
    );

    // Build the TDMA frame and audit it under full SINR load.
    let schedule = TdmaSchedule::from_colors(colors);
    let audit = broadcast_audit(&graph, &cfg, &schedule);
    println!(
        "TDMA frame      : V = {} slots; link success = {:.1}%, \
         full broadcasts = {}/{}",
        schedule.frame_len(),
        100.0 * audit.link_success_rate(),
        audit.full_broadcasts,
        audit.broadcasters
    );
    assert!(
        audit.is_interference_free(),
        "Theorem 3 schedule leaked interference"
    );

    // Contrast: a plain distance-1 coloring is NOT interference-free.
    let naive = color_at_distance(&pts, &cfg, 1.0, 9, WakeupSchedule::Synchronous);
    let naive_schedule = TdmaSchedule::from_colors(naive.colors().expect("completed"));
    let naive_audit = broadcast_audit(&graph, &cfg, &naive_schedule);
    println!(
        "naive contrast  : distance-1 frame V = {} → link success only {:.1}%",
        naive_schedule.frame_len(),
        100.0 * naive_audit.link_success_rate()
    );

    // Palette reduction (§V): compress the per-hop colors to Δ+1.
    let proper = Coloring::from_vec(colors.to_vec());
    let reduced = reduce_palette(&graph, &proper);
    println!(
        "palette reduce  : {} → {} colors (Δ+1 = {})",
        proper.color_count(),
        reduced.palette_size(),
        graph.max_degree() + 1
    );
    println!("OK — interference-free MAC schedule constructed.");
}
