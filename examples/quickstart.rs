//! Quickstart: color a random wireless network under the SINR model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_coloring::verify::distance_violations;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn main() {
    // 1. Physical layer: α = 4, β = 1.5, ρ = 2, normalized to R_T = 1.
    let cfg = SinrConfig::default_unit();
    println!("physical config : {cfg}");
    println!("guard distance d: {:.2} (Theorem 3)", cfg.guard_distance());

    // 2. Topology: 120 nodes, expected degree 12.
    let pts = placement::uniform_with_expected_degree(120, cfg.r_t(), 12.0, 42);
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    println!(
        "topology        : n = {}, Δ = {}, edges = {}",
        graph.len(),
        graph.max_degree(),
        graph.edge_count()
    );

    // 3. Algorithm constants (practical profile; see DESIGN.md §3).
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    println!(
        "params          : listen = {} slots, threshold = {}, palette bound = {}",
        params.listen_slots(),
        params.counter_threshold(),
        params.palette_bound()
    );

    // 4. Run the MW coloring algorithm under the SINR physical model.
    let outcome = run_mw(
        &graph,
        SinrModel::new(cfg),
        &MwConfig::new(params).with_seed(7),
        WakeupSchedule::Synchronous,
    );
    assert!(outcome.all_done, "run hit the slot cap");
    println!(
        "run             : {} slots, max per-node latency = {:?}",
        outcome.slots, outcome.max_latency
    );
    println!(
        "coloring        : {} distinct colors ({} leaders), palette {} ≤ bound {}",
        outcome.colors_used,
        outcome.leaders,
        outcome.palette,
        params.palette_bound()
    );

    // 5. Verify: no two neighbors share a color (a (1, O(Δ))-coloring).
    let coloring = outcome.coloring.expect("all nodes decided");
    let violations = distance_violations(graph.positions(), coloring.as_slice(), graph.radius());
    println!("verification    : {} violations", violations.len());
    assert!(
        violations.is_empty(),
        "coloring is not proper: {violations:?}"
    );
    println!("OK — proper O(Δ)-coloring computed under SINR.");
}
