//! Allocation profiling from library code: the `sinrcolor profile`
//! subcommand's machinery, driven directly.
//!
//! ```text
//! cargo run --release --example profiling
//! ```
//!
//! Three pieces cooperate (all in `sinr-obs::alloc`):
//!
//! 1. [`CountingAlloc`] installed as the **binary's** global allocator —
//!    library crates never install one (lint L10), so the same library
//!    code runs uninstrumented elsewhere at zero cost.
//! 2. [`AllocScope`] attributing a region's heap traffic to an
//!    [`AllocStats`] accumulator (here: topology construction).
//! 3. [`run_mw_profiled`], which wires the engine's per-phase
//!    attribution and per-slot sampling and returns an `MwAllocProfile`
//!    next to — never inside — the deterministic `MwOutcome`.
//!
//! A [`Stopwatch`] adds wall-clock context; like the allocation
//! counters, its readings are profile-only and must never feed the
//! deterministic artifacts.

use sinr_coloring::mw::{run_mw_profiled, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{FastSinrModel, SinrConfig};
use sinr_obs::alloc::{AllocScope, AllocStats, CountingAlloc};
use sinr_obs::Stopwatch;
use sinr_radiosim::WakeupSchedule;

// The one sanctioned place for this attribute: a binary. Installing it
// here counts every heap event in the process, including this example's
// own setup — which is exactly what the setup scope below measures.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let cfg = SinrConfig::default_unit();

    // Attribute topology construction to its own accumulator.
    let mut build = AllocStats::new();
    let graph = {
        let _scope = AllocScope::new(&mut build);
        let pts = placement::uniform_with_expected_degree(512, cfg.r_t(), 12.0, 42);
        UnitDiskGraph::new(pts, cfg.r_t())
    };
    println!(
        "topology        : n = {}, Δ = {} — built with {} allocs / {} bytes",
        graph.len(),
        graph.max_degree(),
        build.allocs,
        build.bytes_allocated
    );

    // Profiled run: same outcome as run_mw, plus the heap ledger.
    let params = MwParams::practical(&cfg, graph.len(), graph.max_degree());
    let mw_cfg = MwConfig::new(params).with_seed(42);
    let watch = Stopwatch::start();
    let (outcome, prof) = run_mw_profiled(
        &graph,
        FastSinrModel::new(cfg),
        &mw_cfg,
        WakeupSchedule::Synchronous,
    );
    let elapsed_ns = watch.elapsed_ns();
    println!(
        "run             : all_done = {}, {} slots, {} colors in {:.1} ms",
        outcome.all_done,
        outcome.slots,
        outcome.colors_used,
        elapsed_ns as f64 / 1e6
    );

    // Per-phase attribution (the `prof.alloc.*` vocabulary).
    for (name, stats) in [
        ("mw.setup", &prof.setup),
        ("engine.actions", &prof.engine.actions),
        ("engine.resolve", &prof.engine.resolve),
        ("engine.delivery", &prof.engine.delivery),
    ] {
        println!(
            "{name:16}: {:6} allocs, {:6} frees, {:9} bytes allocated",
            stats.allocs, stats.frees, stats.bytes_allocated
        );
    }

    // Slot classification: allocations front-load into warmup while
    // buffers grow to the instance's working size; steady-state slots of
    // the fused sequential engine run allocation-free (the invariant
    // `tests/alloc_profile.rs` and CI's zero-alloc gate enforce).
    println!(
        "slots           : {} sampled, warmup = {}, steady-state = {:?} allocs/slot",
        prof.engine.per_slot.len(),
        prof.engine.warmup_slots(),
        prof.engine.steady_allocs_per_slot()
    );
    println!(
        "heap peak       : {} bytes; heaviest slots {:?}",
        prof.heap_peak,
        prof.engine.top_allocating_slots(3)
    );
}
