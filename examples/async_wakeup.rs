//! Asynchronous spontaneous wake-up (§II): nodes join the protocol at
//! arbitrary times and still decide correct colors, with per-node latency
//! measured from each node's own wake-up.
//!
//! ```text
//! cargo run --release --example async_wakeup
//! ```

use sinr_coloring::mw::{run_mw, MwConfig};
use sinr_coloring::params::MwParams;
use sinr_coloring::verify::distance_violations;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_model::{SinrConfig, SinrModel};
use sinr_radiosim::WakeupSchedule;

fn main() {
    let cfg = SinrConfig::default_unit();
    let n = 90;
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 11.0, 99);
    let graph = UnitDiskGraph::new(pts, cfg.r_t());
    let params = MwParams::practical(&cfg, n, graph.max_degree());
    println!(
        "network         : n = {n}, Δ = {}, listen window = {} slots",
        graph.max_degree(),
        params.listen_slots()
    );

    let window = 6 * params.listen_slots();
    let schedules = [
        ("synchronous   ", WakeupSchedule::Synchronous),
        ("uniform random", WakeupSchedule::UniformRandom { window }),
        ("staggered     ", WakeupSchedule::Staggered { step: 17 }),
    ];

    for (name, schedule) in schedules {
        let out = run_mw(
            &graph,
            SinrModel::new(cfg),
            &MwConfig::new(params).with_seed(5),
            schedule,
        );
        assert!(out.all_done, "{name}: hit slot cap");
        let coloring = out.coloring.expect("all decided");
        let violations =
            distance_violations(graph.positions(), coloring.as_slice(), graph.radius());
        println!(
            "{name} : global end slot {:>6}, per-node latency max {:>6} / mean {:>8.1}, \
             colors {:>2}, violations {}",
            out.slots,
            out.max_latency.unwrap(),
            out.mean_latency.unwrap(),
            out.colors_used,
            violations.len()
        );
        assert!(violations.is_empty());
    }
    println!(
        "OK — per-node latency stays in the same band regardless of the \
         wake-up pattern; no global start signal is needed."
    );
}
