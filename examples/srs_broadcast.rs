//! Simulating classical message-passing algorithms under SINR
//! (Corollary 1): network-wide broadcast and BFS layering, executed
//! lock-step over a Theorem-3 TDMA schedule.
//!
//! ```text
//! cargo run --release --example srs_broadcast
//! ```

use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::{run_uniform_ideal, BfsLayers, Flooding};
use sinr_mac::srs::simulate_uniform;
use sinr_mac::tdma::TdmaSchedule;
use sinr_model::SinrConfig;
use sinr_radiosim::WakeupSchedule;

fn main() {
    let cfg = SinrConfig::default_unit();
    let n = 80;
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 300);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    assert!(graph.is_connected(), "pick a connected instance");
    println!(
        "network         : n = {n}, Δ = {}, diameter = {:?}",
        graph.max_degree(),
        graph.diameter()
    );

    // One-time setup: (d+1, V)-coloring → TDMA schedule (Theorem 3).
    let factor = theorem3_distance_factor(&cfg);
    let colored = color_at_distance(&pts, &cfg, factor, 55, WakeupSchedule::Synchronous);
    let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
    println!(
        "setup           : coloring took {} slots; frame V = {}",
        colored.outcome.slots,
        schedule.frame_len()
    );

    // --- Broadcast (flooding) ---
    let mut ideal: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
    let tau = run_uniform_ideal(&graph, &mut ideal, 10 * n).rounds;

    let mut nodes: Vec<Flooding> = (0..n).map(|v| Flooding::new(v == 0)).collect();
    let run = simulate_uniform(&graph, &cfg, &schedule, &mut nodes, 10 * n);
    println!(
        "flooding        : ideal τ = {tau} rounds → SINR {} rounds × {} slots = {} slots \
         (faithful: {})",
        run.rounds,
        schedule.frame_len(),
        run.slots,
        run.is_faithful()
    );
    assert!(run.all_done && run.is_faithful());

    // --- BFS layering ---
    let mut bfs: Vec<BfsLayers> = (0..n).map(|v| BfsLayers::new(v == 0)).collect();
    let run = simulate_uniform(&graph, &cfg, &schedule, &mut bfs, 10 * n);
    let expect = graph.bfs_distances(0);
    let correct = (0..n).filter(|&v| bfs[v].distance() == expect[v]).count();
    println!(
        "bfs layering    : {} slots; {}/{} nodes computed the exact hop distance",
        run.slots, correct, n
    );
    assert_eq!(correct, n, "SRS must reproduce the ideal BFS exactly");

    println!(
        "Corollary 1     : total = setup {} + simulation {} slots = O(Δ(log n + τ))",
        colored.outcome.slots, run.slots
    );
    println!("OK — point-to-point algorithms run unchanged under SINR.");
}
