//! Data collection (convergecast) over the SINR MAC layer: the canonical
//! sensor-network workload, end to end.
//!
//! Pipeline: deploy → color at guard distance (Theorem 3) → TDMA schedule
//! → BFS layers (uniform SRS) → convergecast up the BFS tree (general SRS)
//! → sink holds the network-wide aggregate.
//!
//! ```text
//! cargo run --release --example data_collection
//! ```

use sinr_coloring::distance_d::color_at_distance;
use sinr_geometry::{placement, UnitDiskGraph};
use sinr_mac::guard::theorem3_distance_factor;
use sinr_mac::mp::Convergecast;
use sinr_mac::srs::simulate_general_bundled;
use sinr_mac::tdma::TdmaSchedule;
use sinr_model::SinrConfig;
use sinr_radiosim::WakeupSchedule;

fn main() {
    let cfg = SinrConfig::default_unit();
    let n = 90;
    // Connected deployment (seed picked for connectivity at this density).
    let pts = placement::uniform_with_expected_degree(n, cfg.r_t(), 10.0, 300);
    let graph = UnitDiskGraph::new(pts.clone(), cfg.r_t());
    assert!(graph.is_connected());
    println!(
        "deployment      : n = {n}, Δ = {}, diameter = {:?}",
        graph.max_degree(),
        graph.diameter()
    );

    // MAC setup (one-time).
    let colored = color_at_distance(
        &pts,
        &cfg,
        theorem3_distance_factor(&cfg),
        5,
        WakeupSchedule::Synchronous,
    );
    let schedule = TdmaSchedule::from_colors(colored.colors().expect("coloring completed"));
    println!(
        "MAC setup       : {} slots of coloring; frame V = {}",
        colored.outcome.slots,
        schedule.frame_len()
    );

    // Every sensor holds a measurement; the sink is node 0.
    let values: Vec<u64> = (0..n as u64).map(|v| 10 + v % 7).collect();
    let expected: u64 = values.iter().sum();

    let mut nodes = Convergecast::build_tree(&graph, 0, &values);
    let run = simulate_general_bundled(&graph, &cfg, &schedule, &mut nodes, 10 * n);
    assert!(run.all_done && run.is_faithful(), "{run:?}");
    println!(
        "convergecast    : {} rounds × {} slots = {} slots; all deliveries succeeded",
        run.rounds,
        schedule.frame_len(),
        run.slots
    );
    println!(
        "sink aggregate  : {} (expected {})",
        nodes[0].aggregate(),
        expected
    );
    assert_eq!(nodes[0].aggregate(), expected);
    println!("OK — exact network-wide aggregation under physical interference.");
}
